//! Value domains for RTL simulation.
//!
//! The same simulation engine ([`crate::DatapathSim`]) runs over two
//! domains:
//!
//! * [`ConcreteDomain`] — values are `Option<u64>` words (`None` = unknown),
//!   used for functional golden runs and elaboration cross-checks;
//! * [`SymbolicDomain`] — values are hash-consed expression DAG nodes over
//!   per-(port, time) input symbols, used by the SFR/SFI oracle: two
//!   simulation traces compute the same function exactly when their output
//!   expressions are identical (see `sfr-classify`).

use crate::component::{FuOp, InputId};
use std::collections::HashMap;
use std::fmt;

/// A domain of data values the RTL simulator can compute over.
pub trait DataDomain {
    /// The value type.
    type Value: Clone + PartialEq + fmt::Debug;

    /// A constant word (already fitting the datapath width).
    fn constant(&mut self, v: u64) -> Self::Value;

    /// A fresh unknown value (results of X-gated loads, etc.). Two
    /// unknowns are never equal.
    fn unknown(&mut self) -> Self::Value;

    /// Applies a functional-unit operation.
    fn op(&mut self, op: FuOp, a: &Self::Value, b: &Self::Value) -> Self::Value;

    /// Extracts bit 0 as a concrete boolean, if the domain can.
    fn status_bit(&self, v: &Self::Value) -> Option<bool>;
}

/// Concrete word-level domain: `Some(word)` or `None` for unknown.
///
/// Unknowns are modelled conservatively at word granularity: any unknown
/// operand makes the result unknown. Note `None == None` in this domain;
/// the simulator only relies on equality to decide whether an unknown
/// *stays* unknown, so this coarseness is sound.
#[derive(Debug, Clone)]
pub struct ConcreteDomain {
    width: usize,
}

impl ConcreteDomain {
    /// A concrete domain at the given bit width.
    pub fn new(width: usize) -> Self {
        ConcreteDomain { width }
    }
}

impl DataDomain for ConcreteDomain {
    type Value = Option<u64>;

    fn constant(&mut self, v: u64) -> Option<u64> {
        let m = if self.width >= 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        };
        Some(v & m)
    }

    fn unknown(&mut self) -> Option<u64> {
        None
    }

    fn op(&mut self, op: FuOp, a: &Option<u64>, b: &Option<u64>) -> Option<u64> {
        match (a, b) {
            (Some(a), Some(b)) => Some(op.apply(*a, *b, self.width)),
            // Pass ignores b entirely.
            (Some(a), None) if !op.uses_b() => Some(op.apply(*a, 0, self.width)),
            _ => None,
        }
    }

    fn status_bit(&self, v: &Option<u64>) -> Option<bool> {
        v.map(|w| w & 1 == 1)
    }
}

/// A node id in the [`SymbolicDomain`] expression DAG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExprId(u32);

/// An expression DAG node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A constant word.
    Const(u64),
    /// The value presented at data input `port` in cycle `time`.
    Input {
        /// The input port.
        port: InputId,
        /// The cycle the value was sampled.
        time: u64,
    },
    /// An unknown (unique; never equal to anything else).
    Unknown(u32),
    /// An operation over two sub-expressions.
    Op(FuOp, ExprId, ExprId),
}

/// Hash-consed symbolic domain.
///
/// Structurally identical expressions get identical [`ExprId`]s, so value
/// equality is O(1) id comparison. Commutative operations canonicalize
/// operand order and constants fold, which makes the equality check a
/// little stronger than pure syntax while remaining sound: equal ids ⇒
/// equal functions (the converse need not hold — see the classification
/// crate for why that direction is the safe one for SFI labelling).
#[derive(Debug, Default, Clone)]
pub struct SymbolicDomain {
    width: usize,
    nodes: Vec<Expr>,
    intern: HashMap<Expr, ExprId>,
    next_unknown: u32,
}

impl SymbolicDomain {
    /// A symbolic domain at the given bit width (used for constant
    /// folding).
    pub fn new(width: usize) -> Self {
        SymbolicDomain {
            width,
            ..Default::default()
        }
    }

    fn mk(&mut self, e: Expr) -> ExprId {
        if let Some(&id) = self.intern.get(&e) {
            return id;
        }
        let id = ExprId(self.nodes.len() as u32);
        self.nodes.push(e);
        self.intern.insert(e, id);
        id
    }

    /// The symbol for data input `port` at cycle `time`.
    pub fn input(&mut self, port: InputId, time: u64) -> ExprId {
        self.mk(Expr::Input { port, time })
    }

    /// A *named* unknown: two calls with the same tag yield the same
    /// node. Used to give the fault-free and faulty traces identical
    /// symbols for the same physical boot value (register `r` powers up
    /// to the same arbitrary word in both circuits).
    ///
    /// Tags live in a reserved range so they can never collide with the
    /// anonymous unknowns produced by [`DataDomain::unknown`].
    pub fn named_unknown(&mut self, tag: u32) -> ExprId {
        self.mk(Expr::Unknown(tag | 0x8000_0000))
    }

    /// Whether the expression contains any unknown node — i.e. whether a
    /// tester could predict its value. Outputs whose fault-free
    /// expression contains an unknown are unobservable comparison points
    /// (the golden simulation itself cannot say what to expect).
    pub fn contains_unknown(&self, id: ExprId) -> bool {
        // Iterative DFS; the DAG is hash-consed so memoize by node id.
        let mut memo: HashMap<ExprId, bool> = HashMap::new();
        self.contains_unknown_memo(id, &mut memo)
    }

    fn contains_unknown_memo(&self, id: ExprId, memo: &mut HashMap<ExprId, bool>) -> bool {
        if let Some(&v) = memo.get(&id) {
            return v;
        }
        let v = match self.node(id) {
            Expr::Const(_) | Expr::Input { .. } => false,
            Expr::Unknown(_) => true,
            Expr::Op(_, a, b) => {
                self.contains_unknown_memo(a, memo) || self.contains_unknown_memo(b, memo)
            }
        };
        memo.insert(id, v);
        v
    }

    /// The node behind an id.
    pub fn node(&self, id: ExprId) -> Expr {
        self.nodes[id.0 as usize]
    }

    /// Number of distinct nodes created.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Evaluates an expression with concrete input assignments
    /// (`inputs[(port, time)]`); unknowns evaluate to `None`.
    pub fn eval(&self, id: ExprId, inputs: &HashMap<(InputId, u64), u64>) -> Option<u64> {
        match self.node(id) {
            Expr::Const(c) => Some(c),
            Expr::Input { port, time } => inputs.get(&(port, time)).copied(),
            Expr::Unknown(_) => None,
            Expr::Op(op, a, b) => {
                let a = self.eval(a, inputs)?;
                let b = if op.uses_b() {
                    self.eval(b, inputs)?
                } else {
                    0
                };
                Some(op.apply(a, b, self.width))
            }
        }
    }
}

impl DataDomain for SymbolicDomain {
    type Value = ExprId;

    fn constant(&mut self, v: u64) -> ExprId {
        let m = if self.width >= 64 {
            u64::MAX
        } else {
            (1 << self.width) - 1
        };
        self.mk(Expr::Const(v & m))
    }

    fn unknown(&mut self) -> ExprId {
        let id = self.next_unknown;
        self.next_unknown += 1;
        self.mk(Expr::Unknown(id))
    }

    fn op(&mut self, op: FuOp, a: &ExprId, b: &ExprId) -> ExprId {
        let (mut a, mut b) = (*a, *b);
        if !op.uses_b() {
            // Normalize the ignored operand so pass(a, x) == pass(a, y).
            b = self.constant(0);
        }
        // Constant folding.
        if let (Expr::Const(ca), Expr::Const(cb)) = (self.node(a), self.node(b)) {
            let v = op.apply(ca, cb, self.width);
            return self.mk(Expr::Const(v));
        }
        // Canonical operand order for commutative ops.
        if op.is_commutative() && b < a {
            std::mem::swap(&mut a, &mut b);
        }
        self.mk(Expr::Op(op, a, b))
    }

    fn status_bit(&self, _v: &ExprId) -> Option<bool> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concrete_ops_and_unknowns() {
        let mut d = ConcreteDomain::new(4);
        let a = d.constant(9);
        let b = d.constant(9);
        assert_eq!(d.op(FuOp::Add, &a, &b), Some(2));
        let u = d.unknown();
        assert_eq!(d.op(FuOp::Add, &a, &u), None);
        assert_eq!(d.op(FuOp::Pass, &a, &u), Some(9));
        assert_eq!(d.status_bit(&a), Some(true));
        assert_eq!(d.status_bit(&u), None);
    }

    #[test]
    fn symbolic_hash_consing() {
        let mut d = SymbolicDomain::new(4);
        let x = d.input(InputId(0), 3);
        let y = d.input(InputId(1), 3);
        let e1 = d.op(FuOp::Add, &x, &y);
        let e2 = d.op(FuOp::Add, &x, &y);
        assert_eq!(e1, e2);
        let x2 = d.input(InputId(0), 3);
        assert_eq!(x, x2);
        // Different times are different symbols.
        let x_later = d.input(InputId(0), 4);
        assert_ne!(x, x_later);
    }

    #[test]
    fn commutative_canonicalization() {
        let mut d = SymbolicDomain::new(4);
        let x = d.input(InputId(0), 0);
        let y = d.input(InputId(1), 0);
        assert_eq!(d.op(FuOp::Add, &x, &y), d.op(FuOp::Add, &y, &x));
        assert_ne!(d.op(FuOp::Sub, &x, &y), d.op(FuOp::Sub, &y, &x));
    }

    #[test]
    fn constant_folding() {
        let mut d = SymbolicDomain::new(4);
        let a = d.constant(7);
        let b = d.constant(12);
        let s = d.op(FuOp::Add, &a, &b);
        assert_eq!(d.node(s), Expr::Const(3)); // 19 mod 16
    }

    #[test]
    fn unknowns_are_distinct() {
        let mut d = SymbolicDomain::new(4);
        let u1 = d.unknown();
        let u2 = d.unknown();
        assert_ne!(u1, u2);
    }

    #[test]
    fn pass_normalizes_ignored_operand() {
        let mut d = SymbolicDomain::new(4);
        let x = d.input(InputId(0), 0);
        let y = d.input(InputId(1), 0);
        let z = d.input(InputId(2), 0);
        assert_eq!(d.op(FuOp::Pass, &x, &y), d.op(FuOp::Pass, &x, &z));
    }

    #[test]
    fn symbolic_eval_matches_concrete() {
        let mut d = SymbolicDomain::new(4);
        let x = d.input(InputId(0), 0);
        let y = d.input(InputId(1), 0);
        let e = d.op(FuOp::Mul, &x, &y);
        let mut inputs = HashMap::new();
        inputs.insert((InputId(0), 0), 5u64);
        inputs.insert((InputId(1), 0), 5u64);
        assert_eq!(d.eval(e, &inputs), Some(9));
        let u = d.unknown();
        let e2 = d.op(FuOp::Add, &e, &u);
        assert_eq!(d.eval(e2, &inputs), None);
    }
}
