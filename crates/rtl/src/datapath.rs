//! The validated RTL datapath structure and its builder.

use crate::component::{CtrlId, CtrlKind, DataSrc, FuId, FuOp, InputId, MuxId, RegId};
use std::collections::HashSet;
use std::fmt;

/// A primary data input port.
#[derive(Debug, Clone)]
pub struct InputPort {
    pub(crate) name: String,
}

impl InputPort {
    /// Port name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

/// A clock-gated register.
#[derive(Debug, Clone)]
pub struct Register {
    pub(crate) name: String,
    pub(crate) load: CtrlId,
    pub(crate) src: DataSrc,
}

impl Register {
    /// Register name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The control line gating this register's clock.
    pub fn load(&self) -> CtrlId {
        self.load
    }

    /// What feeds the register's data input.
    pub fn src(&self) -> DataSrc {
        self.src
    }
}

/// A multiplexer with `2^s` inputs and `s` select lines.
#[derive(Debug, Clone)]
pub struct Mux {
    pub(crate) name: String,
    pub(crate) sels: Vec<CtrlId>,
    pub(crate) inputs: Vec<DataSrc>,
}

impl Mux {
    /// Mux name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Select lines, LSB first.
    pub fn sels(&self) -> &[CtrlId] {
        &self.sels
    }

    /// Data inputs (length is exactly `2^sels.len()`).
    pub fn inputs(&self) -> &[DataSrc] {
        &self.inputs
    }
}

/// A fixed-function functional unit.
#[derive(Debug, Clone)]
pub struct Fu {
    pub(crate) name: String,
    pub(crate) op: FuOp,
    pub(crate) a: DataSrc,
    pub(crate) b: DataSrc,
}

impl Fu {
    /// Unit name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The unit's operation.
    pub fn op(&self) -> FuOp {
        self.op
    }

    /// First operand source.
    pub fn a(&self) -> DataSrc {
        self.a
    }

    /// Second operand source.
    pub fn b(&self) -> DataSrc {
        self.b
    }
}

/// A named control line of the datapath's control word.
#[derive(Debug, Clone)]
pub struct CtrlLine {
    pub(crate) name: String,
    pub(crate) kind: CtrlKind,
}

impl CtrlLine {
    /// Line name (e.g. `REG3` or `MS1`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Whether the line is a load or a select.
    pub fn kind(&self) -> CtrlKind {
        self.kind
    }
}

/// Errors detected while validating a [`Datapath`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatapathError {
    /// A [`DataSrc`] referenced a component that does not exist.
    DanglingSource {
        /// Description of the referencing component.
        at: String,
    },
    /// A mux's input count is not `2^(number of select lines)`.
    MuxShape {
        /// The offending mux name.
        mux: String,
        /// Number of inputs.
        inputs: usize,
        /// Number of select lines.
        sels: usize,
    },
    /// A constant does not fit the datapath width.
    ConstTooWide {
        /// The constant value.
        value: u64,
    },
    /// A cycle exists through combinational components (mux/FU) only.
    CombinationalCycle {
        /// A component on the cycle.
        at: String,
    },
    /// A control line is referenced with the wrong kind (e.g. a select
    /// line used as a register load).
    CtrlKindMismatch {
        /// The control line index.
        ctrl: usize,
        /// The expected kind.
        expected: CtrlKind,
    },
    /// A declared control line is never used.
    UnusedCtrl {
        /// The control line name.
        name: String,
    },
    /// The datapath width is zero or exceeds 32 bits.
    BadWidth {
        /// The requested width.
        width: usize,
    },
}

impl fmt::Display for DatapathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatapathError::DanglingSource { at } => write!(f, "dangling data source at {at}"),
            DatapathError::MuxShape { mux, inputs, sels } => write!(
                f,
                "mux `{mux}` has {inputs} inputs but {sels} select lines (need 2^sels inputs)"
            ),
            DatapathError::ConstTooWide { value } => {
                write!(f, "constant {value} does not fit the datapath width")
            }
            DatapathError::CombinationalCycle { at } => {
                write!(f, "combinational cycle through {at}")
            }
            DatapathError::CtrlKindMismatch { ctrl, expected } => {
                write!(
                    f,
                    "control line {ctrl} used as {expected} but declared otherwise"
                )
            }
            DatapathError::UnusedCtrl { name } => {
                write!(f, "control line `{name}` is never used")
            }
            DatapathError::BadWidth { width } => {
                write!(f, "unsupported datapath width {width} (need 1..=32)")
            }
        }
    }
}

impl std::error::Error for DatapathError {}

/// A validated RTL datapath in the paper's architectural style.
///
/// Construct with [`DatapathBuilder`]. Invariants:
///
/// * every [`DataSrc`] resolves;
/// * muxes have exactly `2^s` inputs for `s` select lines (so no select
///   pattern is out of range — even a faulty controller can only choose an
///   existing input);
/// * the combinational subgraph (muxes, FUs, outputs, statuses) is acyclic
///   — registers are the only state;
/// * control lines are used consistently with their declared kind, and no
///   declared line is unused.
#[derive(Debug, Clone)]
pub struct Datapath {
    pub(crate) name: String,
    pub(crate) width: usize,
    pub(crate) inputs: Vec<InputPort>,
    pub(crate) registers: Vec<Register>,
    pub(crate) muxes: Vec<Mux>,
    pub(crate) fus: Vec<Fu>,
    pub(crate) outputs: Vec<(String, DataSrc)>,
    pub(crate) statuses: Vec<(String, DataSrc)>,
    pub(crate) control: Vec<CtrlLine>,
}

impl Datapath {
    /// The design name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bit width of every data value.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Primary data-input ports.
    pub fn inputs(&self) -> &[InputPort] {
        &self.inputs
    }

    /// The registers.
    pub fn registers(&self) -> &[Register] {
        &self.registers
    }

    /// The multiplexers.
    pub fn muxes(&self) -> &[Mux] {
        &self.muxes
    }

    /// The functional units.
    pub fn fus(&self) -> &[Fu] {
        &self.fus
    }

    /// Primary data outputs as `(name, source)` pairs.
    pub fn outputs(&self) -> &[(String, DataSrc)] {
        &self.outputs
    }

    /// Status bits fed to the controller as `(name, source)` pairs; bit 0
    /// of the source value is the status.
    pub fn statuses(&self) -> &[(String, DataSrc)] {
        &self.statuses
    }

    /// The control word layout.
    pub fn control(&self) -> &[CtrlLine] {
        &self.control
    }

    /// Number of control lines.
    pub fn control_width(&self) -> usize {
        self.control.len()
    }

    /// Looks up a control line by name.
    pub fn find_ctrl(&self, name: &str) -> Option<CtrlId> {
        self.control.iter().position(|c| c.name == name).map(CtrlId)
    }

    /// The registers gated by a given load line (possibly several — load
    /// lines may be shared).
    pub fn registers_on_load(&self, ctrl: CtrlId) -> Vec<RegId> {
        self.registers
            .iter()
            .enumerate()
            .filter(|(_, r)| r.load == ctrl)
            .map(|(i, _)| RegId(i))
            .collect()
    }

    /// The muxes using a given select line.
    pub fn muxes_on_select(&self, ctrl: CtrlId) -> Vec<MuxId> {
        self.muxes
            .iter()
            .enumerate()
            .filter(|(_, m)| m.sels.contains(&ctrl))
            .map(|(i, _)| MuxId(i))
            .collect()
    }

    /// Combinational components (muxes and FUs) in dependency order:
    /// every component appears after everything it combinationally reads.
    pub(crate) fn topo_comb(&self) -> Vec<CombId> {
        // Simple DFS; validated acyclic at build time.
        let mut order = Vec::new();
        let mut seen = HashSet::new();
        let mut stack: Vec<(CombId, bool)> = Vec::new();
        let all: Vec<CombId> = (0..self.muxes.len())
            .map(CombId::Mux)
            .chain((0..self.fus.len()).map(CombId::Fu))
            .collect();
        for root in all {
            if seen.contains(&root) {
                continue;
            }
            stack.push((root, false));
            while let Some((node, expanded)) = stack.pop() {
                if expanded {
                    if seen.insert(node) {
                        order.push(node);
                    }
                    continue;
                }
                if seen.contains(&node) {
                    continue;
                }
                stack.push((node, true));
                let deps: Vec<DataSrc> = match node {
                    CombId::Mux(i) => self.muxes[i].inputs.clone(),
                    CombId::Fu(i) => vec![self.fus[i].a, self.fus[i].b],
                };
                for d in deps {
                    match d {
                        DataSrc::Mux(MuxId(i)) if !seen.contains(&CombId::Mux(i)) => {
                            stack.push((CombId::Mux(i), false));
                        }
                        DataSrc::Fu(FuId(i)) if !seen.contains(&CombId::Fu(i)) => {
                            stack.push((CombId::Fu(i), false));
                        }
                        _ => {}
                    }
                }
            }
        }
        order
    }
}

/// Identifier of a combinational component in evaluation order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum CombId {
    Mux(usize),
    Fu(usize),
}

/// Builder for [`Datapath`].
///
/// # Examples
///
/// ```
/// use sfr_rtl::{DatapathBuilder, DataSrc, FuOp};
///
/// # fn main() -> Result<(), sfr_rtl::DatapathError> {
/// // One functional block in the paper's Figure 4 style:
/// // mux(x, y) -> adder with z -> register.
/// let mut b = DatapathBuilder::new("block", 4);
/// let x = b.input("x");
/// let y = b.input("y");
/// let z = b.input("z");
/// let ms1 = b.select_line("MS1");
/// let ld1 = b.load_line("REG1");
/// let mux = b.mux("M1", &[ms1], &[DataSrc::Input(x), DataSrc::Input(y)]);
/// let alu = b.fu("ALU1", FuOp::Add, DataSrc::Mux(mux), DataSrc::Input(z));
/// let r1 = b.register("R1", ld1, DataSrc::Fu(alu));
/// b.output("out", DataSrc::Reg(r1));
/// let dp = b.finish()?;
/// assert_eq!(dp.control_width(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct DatapathBuilder {
    dp: Datapath,
}

impl DatapathBuilder {
    /// Starts a datapath of the given name and bit width.
    pub fn new(name: impl Into<String>, width: usize) -> Self {
        DatapathBuilder {
            dp: Datapath {
                name: name.into(),
                width,
                inputs: Vec::new(),
                registers: Vec::new(),
                muxes: Vec::new(),
                fus: Vec::new(),
                outputs: Vec::new(),
                statuses: Vec::new(),
                control: Vec::new(),
            },
        }
    }

    /// Declares a primary data input.
    pub fn input(&mut self, name: impl Into<String>) -> InputId {
        self.dp.inputs.push(InputPort { name: name.into() });
        InputId(self.dp.inputs.len() - 1)
    }

    /// Declares a register load line.
    pub fn load_line(&mut self, name: impl Into<String>) -> CtrlId {
        self.dp.control.push(CtrlLine {
            name: name.into(),
            kind: CtrlKind::Load,
        });
        CtrlId(self.dp.control.len() - 1)
    }

    /// Declares a multiplexer select line.
    pub fn select_line(&mut self, name: impl Into<String>) -> CtrlId {
        self.dp.control.push(CtrlLine {
            name: name.into(),
            kind: CtrlKind::Select,
        });
        CtrlId(self.dp.control.len() - 1)
    }

    /// Adds a register gated by `load`, fed from `src`.
    pub fn register(&mut self, name: impl Into<String>, load: CtrlId, src: DataSrc) -> RegId {
        self.dp.registers.push(Register {
            name: name.into(),
            load,
            src,
        });
        RegId(self.dp.registers.len() - 1)
    }

    /// Adds a multiplexer with the given select lines (LSB first) and
    /// `2^sels.len()` inputs.
    pub fn mux(&mut self, name: impl Into<String>, sels: &[CtrlId], inputs: &[DataSrc]) -> MuxId {
        self.dp.muxes.push(Mux {
            name: name.into(),
            sels: sels.to_vec(),
            inputs: inputs.to_vec(),
        });
        MuxId(self.dp.muxes.len() - 1)
    }

    /// Adds a fixed-function unit.
    pub fn fu(&mut self, name: impl Into<String>, op: FuOp, a: DataSrc, b: DataSrc) -> FuId {
        self.dp.fus.push(Fu {
            name: name.into(),
            op,
            a,
            b,
        });
        FuId(self.dp.fus.len() - 1)
    }

    /// Declares a primary data output.
    pub fn output(&mut self, name: impl Into<String>, src: DataSrc) {
        self.dp.outputs.push((name.into(), src));
    }

    /// Declares a 1-bit status feed to the controller (bit 0 of `src`).
    pub fn status(&mut self, name: impl Into<String>, src: DataSrc) {
        self.dp.statuses.push((name.into(), src));
    }

    /// Validates the datapath.
    ///
    /// # Errors
    ///
    /// Returns a [`DatapathError`] describing the first violated invariant
    /// (see [`Datapath`] for the list).
    pub fn finish(self) -> Result<Datapath, DatapathError> {
        let dp = self.dp;
        if dp.width == 0 || dp.width > 32 {
            return Err(DatapathError::BadWidth { width: dp.width });
        }
        let check_src = |src: DataSrc, at: &str| -> Result<(), DatapathError> {
            let ok = match src {
                DataSrc::Input(InputId(i)) => i < dp.inputs.len(),
                DataSrc::Reg(RegId(i)) => i < dp.registers.len(),
                DataSrc::Mux(MuxId(i)) => i < dp.muxes.len(),
                DataSrc::Fu(FuId(i)) => i < dp.fus.len(),
                DataSrc::Const(v) => {
                    let m = if dp.width >= 64 {
                        u64::MAX
                    } else {
                        (1 << dp.width) - 1
                    };
                    if v & !m != 0 {
                        return Err(DatapathError::ConstTooWide { value: v });
                    }
                    true
                }
            };
            if ok {
                Ok(())
            } else {
                Err(DatapathError::DanglingSource { at: at.to_string() })
            }
        };
        let check_ctrl = |c: CtrlId, expected: CtrlKind| -> Result<(), DatapathError> {
            match dp.control.get(c.0) {
                Some(line) if line.kind == expected => Ok(()),
                _ => Err(DatapathError::CtrlKindMismatch {
                    ctrl: c.0,
                    expected,
                }),
            }
        };

        for r in &dp.registers {
            check_src(r.src, &format!("register {}", r.name))?;
            check_ctrl(r.load, CtrlKind::Load)?;
        }
        for m in &dp.muxes {
            if m.inputs.len() != 1usize << m.sels.len() {
                return Err(DatapathError::MuxShape {
                    mux: m.name.clone(),
                    inputs: m.inputs.len(),
                    sels: m.sels.len(),
                });
            }
            for s in &m.sels {
                check_ctrl(*s, CtrlKind::Select)?;
            }
            for &i in &m.inputs {
                check_src(i, &format!("mux {}", m.name))?;
            }
        }
        for u in &dp.fus {
            check_src(u.a, &format!("fu {}", u.name))?;
            check_src(u.b, &format!("fu {}", u.name))?;
        }
        for (n, s) in dp.outputs.iter().chain(&dp.statuses) {
            check_src(*s, &format!("port {n}"))?;
        }

        // Unused control lines.
        let mut used = vec![false; dp.control.len()];
        for r in &dp.registers {
            used[r.load.0] = true;
        }
        for m in &dp.muxes {
            for s in &m.sels {
                used[s.0] = true;
            }
        }
        if let Some(i) = used.iter().position(|&u| !u) {
            return Err(DatapathError::UnusedCtrl {
                name: dp.control[i].name.clone(),
            });
        }

        // Acyclicity through combinational components (DFS cycle check).
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let n = dp.muxes.len() + dp.fus.len();
        let idx = |c: CombId| match c {
            CombId::Mux(i) => i,
            CombId::Fu(i) => dp.muxes.len() + i,
        };
        let mut marks = vec![Mark::White; n];
        fn visit(
            dp: &Datapath,
            c: CombId,
            marks: &mut [Mark],
            idx: &dyn Fn(CombId) -> usize,
        ) -> Result<(), DatapathError> {
            match marks[idx(c)] {
                Mark::Black => return Ok(()),
                Mark::Grey => {
                    let at = match c {
                        CombId::Mux(i) => format!("mux {}", dp.muxes[i].name),
                        CombId::Fu(i) => format!("fu {}", dp.fus[i].name),
                    };
                    return Err(DatapathError::CombinationalCycle { at });
                }
                Mark::White => {}
            }
            marks[idx(c)] = Mark::Grey;
            let deps: Vec<DataSrc> = match c {
                CombId::Mux(i) => dp.muxes[i].inputs.clone(),
                CombId::Fu(i) => vec![dp.fus[i].a, dp.fus[i].b],
            };
            for d in deps {
                match d {
                    DataSrc::Mux(MuxId(i)) => visit(dp, CombId::Mux(i), marks, idx)?,
                    DataSrc::Fu(FuId(i)) => visit(dp, CombId::Fu(i), marks, idx)?,
                    _ => {}
                }
            }
            marks[idx(c)] = Mark::Black;
            Ok(())
        }
        for i in 0..dp.muxes.len() {
            visit(&dp, CombId::Mux(i), &mut marks, &idx)?;
        }
        for i in 0..dp.fus.len() {
            visit(&dp, CombId::Fu(i), &mut marks, &idx)?;
        }

        Ok(dp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> DatapathBuilder {
        let mut b = DatapathBuilder::new("block", 4);
        let x = b.input("x");
        let y = b.input("y");
        let ms = b.select_line("MS1");
        let ld = b.load_line("REG1");
        let m = b.mux("M1", &[ms], &[DataSrc::Input(x), DataSrc::Input(y)]);
        let f = b.fu("A1", FuOp::Add, DataSrc::Mux(m), DataSrc::Input(x));
        let r = b.register("R1", ld, DataSrc::Fu(f));
        b.output("o", DataSrc::Reg(r));
        b
    }

    #[test]
    fn valid_block_builds() {
        let dp = block().finish().expect("valid");
        assert_eq!(dp.width(), 4);
        assert_eq!(dp.control_width(), 2);
        assert_eq!(dp.find_ctrl("MS1"), Some(CtrlId(0)));
        assert_eq!(dp.registers_on_load(CtrlId(1)), vec![RegId(0)]);
        assert_eq!(dp.muxes_on_select(CtrlId(0)), vec![MuxId(0)]);
    }

    #[test]
    fn rejects_bad_mux_shape() {
        let mut b = DatapathBuilder::new("bad", 4);
        let x = b.input("x");
        let s = b.select_line("s");
        let ld = b.load_line("l");
        let m = b.mux("m", &[s], &[DataSrc::Input(x)]); // 1 input, 1 sel
        let r = b.register("r", ld, DataSrc::Mux(m));
        b.output("o", DataSrc::Reg(r));
        assert!(matches!(b.finish(), Err(DatapathError::MuxShape { .. })));
    }

    #[test]
    fn rejects_dangling_source() {
        let mut b = DatapathBuilder::new("bad", 4);
        let ld = b.load_line("l");
        let r = b.register("r", ld, DataSrc::Reg(RegId(5)));
        b.output("o", DataSrc::Reg(r));
        assert!(matches!(
            b.finish(),
            Err(DatapathError::DanglingSource { .. })
        ));
    }

    #[test]
    fn rejects_ctrl_kind_mismatch() {
        let mut b = DatapathBuilder::new("bad", 4);
        let x = b.input("x");
        let s = b.select_line("s");
        let r = b.register("r", s, DataSrc::Input(x)); // select used as load
        b.output("o", DataSrc::Reg(r));
        assert!(matches!(
            b.finish(),
            Err(DatapathError::CtrlKindMismatch { .. })
        ));
    }

    #[test]
    fn rejects_unused_ctrl() {
        let mut b = DatapathBuilder::new("bad", 4);
        let x = b.input("x");
        let ld = b.load_line("l");
        let _extra = b.load_line("unused");
        let r = b.register("r", ld, DataSrc::Input(x));
        b.output("o", DataSrc::Reg(r));
        assert!(matches!(b.finish(), Err(DatapathError::UnusedCtrl { .. })));
    }

    #[test]
    fn rejects_combinational_cycle() {
        let mut b = DatapathBuilder::new("bad", 4);
        // Two FUs feeding each other.
        let f1 = b.fu("f1", FuOp::Add, DataSrc::Fu(FuId(1)), DataSrc::Const(1));
        let f2 = b.fu("f2", FuOp::Add, DataSrc::Fu(FuId(0)), DataSrc::Const(1));
        let _ = (f1, f2);
        b.output("o", DataSrc::Fu(FuId(0)));
        assert!(matches!(
            b.finish(),
            Err(DatapathError::CombinationalCycle { .. })
        ));
    }

    #[test]
    fn register_feedback_is_not_a_cycle() {
        let mut b = DatapathBuilder::new("acc", 4);
        let x = b.input("x");
        let ld = b.load_line("l");
        // Accumulator: r = r + x.
        let f = b.fu("add", FuOp::Add, DataSrc::Reg(RegId(0)), DataSrc::Input(x));
        let r = b.register("r", ld, DataSrc::Fu(f));
        b.output("o", DataSrc::Reg(r));
        assert!(b.finish().is_ok());
    }

    #[test]
    fn rejects_wide_constant() {
        let mut b = DatapathBuilder::new("bad", 4);
        let ld = b.load_line("l");
        let r = b.register("r", ld, DataSrc::Const(16));
        b.output("o", DataSrc::Reg(r));
        assert!(matches!(
            b.finish(),
            Err(DatapathError::ConstTooWide { .. })
        ));
    }

    #[test]
    fn topo_order_covers_all_comb_components() {
        let dp = block().finish().unwrap();
        let order = dp.topo_comb();
        assert_eq!(order.len(), 2);
        // Mux before FU (the FU reads the mux).
        assert_eq!(order[0], CombId::Mux(0));
        assert_eq!(order[1], CombId::Fu(0));
    }
}
