//! The generic RTL datapath simulation engine.
//!
//! One engine serves both the concrete and the symbolic domain (see
//! [`crate::domain`]). Each [`DatapathSim::step`] settles the
//! combinational network under a control word, samples outputs and status
//! feeds, and then performs the gated register updates — the same
//! settle-then-clock discipline as the gate-level simulator in
//! [`sfr_netlist`].

use crate::component::{CtrlId, DataSrc, FuId, MuxId};
use crate::datapath::{CombId, Datapath};
use crate::domain::DataDomain;
use sfr_netlist::Logic;

/// What one simulation cycle produced (settled, pre-clock values).
#[derive(Debug, Clone, PartialEq)]
pub struct StepResult<V> {
    /// Primary data outputs, in declaration order.
    pub outputs: Vec<V>,
    /// Status feeds, in declaration order.
    pub statuses: Vec<V>,
}

/// RTL simulator over an arbitrary [`DataDomain`].
///
/// # Examples
///
/// ```
/// use sfr_rtl::{ConcreteDomain, DatapathBuilder, DatapathSim, DataSrc, FuOp};
/// use sfr_netlist::Logic;
///
/// # fn main() -> Result<(), sfr_rtl::DatapathError> {
/// let mut b = DatapathBuilder::new("acc", 4);
/// let x = b.input("x");
/// let ld = b.load_line("LD");
/// let add = b.fu("add", FuOp::Add, DataSrc::Reg(sfr_rtl::RegId(0)), DataSrc::Input(x));
/// let r = b.register("r", ld, DataSrc::Fu(add));
/// b.output("sum", DataSrc::Reg(r));
/// let dp = b.finish()?;
///
/// let mut sim = DatapathSim::new(&dp, ConcreteDomain::new(4));
/// sim.set_reg(sfr_rtl::RegId(0), Some(0));
/// sim.step(&[Logic::One], &[Some(3)]);  // r = 0 + 3
/// let out = sim.step(&[Logic::One], &[Some(5)]); // r = 3 + 5, observes 3
/// assert_eq!(out.outputs, vec![Some(3)]);
/// let out = sim.step(&[Logic::Zero], &[Some(9)]); // hold
/// assert_eq!(out.outputs, vec![Some(8)]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DatapathSim<'a, D: DataDomain> {
    dp: &'a Datapath,
    domain: D,
    regs: Vec<D::Value>,
    comb_order: Vec<CombId>,
    time: u64,
}

impl<'a, D: DataDomain> DatapathSim<'a, D> {
    /// Creates a simulator with all registers unknown (power-up state).
    pub fn new(dp: &'a Datapath, mut domain: D) -> Self {
        let regs = (0..dp.registers().len())
            .map(|_| domain.unknown())
            .collect();
        let comb_order = dp.topo_comb();
        DatapathSim {
            dp,
            domain,
            regs,
            comb_order,
            time: 0,
        }
    }

    /// The datapath under simulation.
    pub fn datapath(&self) -> &'a Datapath {
        self.dp
    }

    /// Mutable access to the domain (e.g. to create input symbols).
    pub fn domain_mut(&mut self) -> &mut D {
        &mut self.domain
    }

    /// Shared access to the domain.
    pub fn domain(&self) -> &D {
        &self.domain
    }

    /// Consumes the simulator, handing back its domain — e.g. to seed a
    /// second simulation whose expressions must intern into the same DAG
    /// (the fault-free/faulty equivalence check in `sfr-classify`).
    pub fn into_domain(self) -> D {
        self.domain
    }

    /// Current cycle count.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Overwrites one register's current value.
    pub fn set_reg(&mut self, reg: crate::component::RegId, v: D::Value) {
        self.regs[reg.0] = v;
    }

    /// Reads one register's current value.
    pub fn reg(&self, reg: crate::component::RegId) -> &D::Value {
        &self.regs[reg.0]
    }

    /// Resets every register to a fresh unknown.
    pub fn reset_unknown(&mut self) {
        for r in self.regs.iter_mut() {
            *r = self.domain.unknown();
        }
        self.time = 0;
    }

    /// Settles the network and returns every component's value, indexed
    /// for muxes and FUs.
    fn settle(&mut self, ctrl: &[Logic], inputs: &[D::Value]) -> (Vec<D::Value>, Vec<D::Value>) {
        assert_eq!(
            ctrl.len(),
            self.dp.control_width(),
            "control word width mismatch"
        );
        assert_eq!(
            inputs.len(),
            self.dp.inputs().len(),
            "data input count mismatch"
        );
        let mut mux_vals: Vec<Option<D::Value>> = vec![None; self.dp.muxes().len()];
        let mut fu_vals: Vec<Option<D::Value>> = vec![None; self.dp.fus().len()];

        for i in 0..self.comb_order.len() {
            let c = self.comb_order[i];
            match c {
                CombId::Mux(mi) => {
                    let v = self.eval_mux(mi, ctrl, inputs, &mux_vals, &fu_vals);
                    mux_vals[mi] = Some(v);
                }
                CombId::Fu(fi) => {
                    let fu = &self.dp.fus()[fi];
                    let a = self.resolve(fu.a(), inputs, &mux_vals, &fu_vals);
                    let b = self.resolve(fu.b(), inputs, &mux_vals, &fu_vals);
                    let v = self.domain.op(fu.op(), &a, &b);
                    fu_vals[fi] = Some(v);
                }
            }
        }
        (
            mux_vals
                .into_iter()
                .map(|v| v.expect("topo complete"))
                .collect(),
            fu_vals
                .into_iter()
                .map(|v| v.expect("topo complete"))
                .collect(),
        )
    }

    fn resolve(
        &mut self,
        src: DataSrc,
        inputs: &[D::Value],
        mux_vals: &[Option<D::Value>],
        fu_vals: &[Option<D::Value>],
    ) -> D::Value {
        match src {
            DataSrc::Input(i) => inputs[i.0].clone(),
            DataSrc::Reg(r) => self.regs[r.0].clone(),
            DataSrc::Mux(MuxId(m)) => mux_vals[m].clone().expect("mux evaluated before use"),
            DataSrc::Fu(FuId(f)) => fu_vals[f].clone().expect("fu evaluated before use"),
            DataSrc::Const(c) => self.domain.constant(c),
        }
    }

    fn eval_mux(
        &mut self,
        mi: usize,
        ctrl: &[Logic],
        inputs: &[D::Value],
        mux_vals: &[Option<D::Value>],
        fu_vals: &[Option<D::Value>],
    ) -> D::Value {
        let mux = &self.dp.muxes()[mi];
        let sels: Vec<Logic> = mux.sels().iter().map(|&CtrlId(c)| ctrl[c]).collect();
        let srcs: Vec<DataSrc> = mux.inputs().to_vec();
        let mut index = 0usize;
        let mut known = true;
        for (bit, s) in sels.iter().enumerate() {
            match s.to_bool() {
                Some(true) => index |= 1 << bit,
                Some(false) => {}
                None => {
                    known = false;
                    break;
                }
            }
        }
        if known {
            return self.resolve(srcs[index], inputs, mux_vals, fu_vals);
        }
        // Unknown select: the output is known only if every selectable
        // input (consistent with the known select bits) agrees.
        let mut candidate: Option<D::Value> = None;
        for (i, &src) in srcs.iter().enumerate() {
            let consistent = sels.iter().enumerate().all(|(bit, s)| match s.to_bool() {
                Some(b) => (i >> bit) & 1 == usize::from(b),
                None => true,
            });
            if !consistent {
                continue;
            }
            let v = self.resolve(src, inputs, mux_vals, fu_vals);
            match &candidate {
                None => candidate = Some(v),
                Some(c) if *c == v => {}
                Some(_) => return self.domain.unknown(),
            }
        }
        candidate.unwrap_or_else(|| self.domain.unknown())
    }

    /// One full cycle: settle under `ctrl`, sample outputs and statuses,
    /// then clock the gated registers.
    ///
    /// Register update semantics per load-line value:
    ///
    /// * `1` — load the settled source value;
    /// * `0` — hold;
    /// * `X` — keep the current value only if the incoming value is
    ///   provably equal, otherwise become unknown.
    ///
    /// # Panics
    ///
    /// Panics if `ctrl` or `inputs` lengths do not match the datapath.
    pub fn step(&mut self, ctrl: &[Logic], inputs: &[D::Value]) -> StepResult<D::Value> {
        let (mux_vals, fu_vals) = self.settle(ctrl, inputs);
        let mux_vals: Vec<Option<D::Value>> = mux_vals.into_iter().map(Some).collect();
        let fu_vals: Vec<Option<D::Value>> = fu_vals.into_iter().map(Some).collect();

        let outputs = self
            .dp
            .outputs()
            .iter()
            .map(|&(_, src)| self.resolve(src, inputs, &mux_vals, &fu_vals))
            .collect();
        let statuses = self
            .dp
            .statuses()
            .iter()
            .map(|&(_, src)| self.resolve(src, inputs, &mux_vals, &fu_vals))
            .collect();

        // Clock edge.
        let n = self.dp.registers().len();
        let mut next: Vec<D::Value> = Vec::with_capacity(n);
        for ri in 0..n {
            let r = &self.dp.registers()[ri];
            let load = ctrl[r.load().0];
            let cur = self.regs[ri].clone();
            let v = match load {
                Logic::One => {
                    let src = r.src();
                    self.resolve(src, inputs, &mux_vals, &fu_vals)
                }
                Logic::Zero => cur,
                Logic::X => {
                    let incoming = self.resolve(r.src(), inputs, &mux_vals, &fu_vals);
                    if incoming == cur {
                        cur
                    } else {
                        self.domain.unknown()
                    }
                }
            };
            next.push(v);
        }
        self.regs = next;
        self.time += 1;

        StepResult { outputs, statuses }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::{DataSrc, FuOp, RegId};
    use crate::datapath::DatapathBuilder;
    use crate::domain::{ConcreteDomain, SymbolicDomain};
    use Logic::{One, Zero, X};

    /// mux(x,y) -> add z -> R1; R1 -> out; lt(R1, z) -> status.
    fn block() -> crate::datapath::Datapath {
        let mut b = DatapathBuilder::new("block", 4);
        let x = b.input("x");
        let y = b.input("y");
        let z = b.input("z");
        let ms = b.select_line("MS1");
        let ld = b.load_line("REG1");
        let m = b.mux("M1", &[ms], &[DataSrc::Input(x), DataSrc::Input(y)]);
        let f = b.fu("A1", FuOp::Add, DataSrc::Mux(m), DataSrc::Input(z));
        let r = b.register("R1", ld, DataSrc::Fu(f));
        let cmp = b.fu("C1", FuOp::Lt, DataSrc::Reg(r), DataSrc::Input(z));
        b.output("o", DataSrc::Reg(r));
        b.status("lt", DataSrc::Fu(cmp));
        b.finish().unwrap()
    }

    #[test]
    fn concrete_block_computes() {
        let dp = block();
        let mut sim = DatapathSim::new(&dp, ConcreteDomain::new(4));
        // ctrl = [MS1, REG1]; select x, load.
        let r = sim.step(&[Zero, One], &[Some(3), Some(9), Some(2)]);
        assert_eq!(r.outputs, vec![None]); // register still X pre-clock
        let r = sim.step(&[One, Zero], &[Some(0), Some(0), Some(7)]);
        // Register now holds 3 + 2 = 5; status: 5 < 7.
        assert_eq!(r.outputs, vec![Some(5)]);
        assert_eq!(r.statuses, vec![Some(1)]);
    }

    #[test]
    fn select_chooses_the_other_operand() {
        let dp = block();
        let mut sim = DatapathSim::new(&dp, ConcreteDomain::new(4));
        sim.step(&[One, One], &[Some(3), Some(9), Some(2)]); // y + z = 11
        let r = sim.step(&[Zero, Zero], &[Some(0), Some(0), Some(0)]);
        assert_eq!(r.outputs, vec![Some(11)]);
    }

    #[test]
    fn x_select_with_equal_inputs_is_known() {
        let dp = block();
        let mut sim = DatapathSim::new(&dp, ConcreteDomain::new(4));
        sim.step(&[X, One], &[Some(6), Some(6), Some(1)]); // both mux legs 6
        let r = sim.step(&[Zero, Zero], &[Some(0), Some(0), Some(0)]);
        assert_eq!(r.outputs, vec![Some(7)]);
    }

    #[test]
    fn x_select_with_different_inputs_is_unknown() {
        let dp = block();
        let mut sim = DatapathSim::new(&dp, ConcreteDomain::new(4));
        sim.step(&[X, One], &[Some(6), Some(7), Some(1)]);
        let r = sim.step(&[Zero, Zero], &[Some(0), Some(0), Some(0)]);
        assert_eq!(r.outputs, vec![None]);
    }

    #[test]
    fn x_load_keeps_value_only_when_data_matches() {
        let dp = block();
        let mut sim = DatapathSim::new(&dp, ConcreteDomain::new(4));
        sim.step(&[Zero, One], &[Some(3), Some(0), Some(2)]); // r = 5
                                                              // X load with incoming 5 (3 + 2 again): survives.
        sim.step(&[Zero, X], &[Some(3), Some(0), Some(2)]);
        let r = sim.step(&[Zero, Zero], &[Some(0), Some(0), Some(0)]);
        assert_eq!(r.outputs, vec![Some(5)]);
        // X load with incoming 9: unknown.
        sim.step(&[Zero, X], &[Some(7), Some(0), Some(2)]);
        let r = sim.step(&[Zero, Zero], &[Some(0), Some(0), Some(0)]);
        assert_eq!(r.outputs, vec![None]);
    }

    #[test]
    fn symbolic_matches_concrete_via_eval() {
        use crate::component::InputId;
        use std::collections::HashMap;
        let dp = block();
        let mut sym = DatapathSim::new(&dp, SymbolicDomain::new(4));
        let mut conc = DatapathSim::new(&dp, ConcreteDomain::new(4));
        let data: [[u64; 3]; 3] = [[3, 9, 2], [1, 1, 15], [7, 0, 7]];
        let ctrl = [[Zero, One], [One, One], [Zero, Zero]];
        let mut assignment = HashMap::new();
        let mut sym_outs = Vec::new();
        let mut conc_outs = Vec::new();
        for (t, (c, d)) in ctrl.iter().zip(&data).enumerate() {
            let t = t as u64;
            let sym_inputs: Vec<_> = (0..3)
                .map(|p| {
                    assignment.insert((InputId(p), t), d[p]);
                    sym.domain_mut().input(InputId(p), t)
                })
                .collect();
            let conc_inputs: Vec<_> = d.iter().map(|&v| Some(v)).collect();
            sym_outs.push(sym.step(c, &sym_inputs));
            conc_outs.push(conc.step(c, &conc_inputs));
        }
        for (s, c) in sym_outs.iter().zip(&conc_outs) {
            for (se, ce) in s.outputs.iter().zip(&c.outputs) {
                assert_eq!(sym.domain().eval(*se, &assignment), *ce);
            }
            for (se, ce) in s.statuses.iter().zip(&c.statuses) {
                assert_eq!(sym.domain().eval(*se, &assignment), *ce);
            }
        }
    }

    #[test]
    fn symbolic_identical_traces_have_identical_exprs() {
        use crate::component::InputId;
        let dp = block();
        let mut a = DatapathSim::new(&dp, SymbolicDomain::new(4));
        // Run the same control trace twice in two sims with a shared
        // symbol convention: expressions must match id-for-id when using
        // the same domain.
        let inputs_t0: Vec<_> = (0..3)
            .map(|p| a.domain_mut().input(InputId(p), 0))
            .collect();
        let r1 = a.step(&[Zero, One], &inputs_t0);
        let mut b = DatapathSim::new(&dp, SymbolicDomain::new(4));
        let inputs_t0b: Vec<_> = (0..3)
            .map(|p| b.domain_mut().input(InputId(p), 0))
            .collect();
        let r2 = b.step(&[Zero, One], &inputs_t0b);
        // Output is still the initial unknown (different unknown ids), but
        // statuses and subsequent loads derive from inputs identically.
        let n1 = a.step(&[Zero, Zero], &inputs_t0);
        let n2 = b.step(&[Zero, Zero], &inputs_t0b);
        assert_eq!(
            a.domain().node(n1.outputs[0]),
            b.domain().node(n2.outputs[0])
        );
        let _ = (r1, r2);
    }

    #[test]
    fn accumulator_feedback() {
        let mut b = DatapathBuilder::new("acc", 4);
        let x = b.input("x");
        let ld = b.load_line("LD");
        let f = b.fu("add", FuOp::Add, DataSrc::Reg(RegId(0)), DataSrc::Input(x));
        let r = b.register("r", ld, DataSrc::Fu(f));
        b.output("sum", DataSrc::Reg(r));
        let dp = b.finish().unwrap();
        let mut sim = DatapathSim::new(&dp, ConcreteDomain::new(4));
        sim.set_reg(RegId(0), Some(0));
        for v in [1u64, 2, 3, 4] {
            sim.step(&[One], &[Some(v)]);
        }
        let r = sim.step(&[Zero], &[Some(0)]);
        assert_eq!(r.outputs, vec![Some(10)]);
    }
}
