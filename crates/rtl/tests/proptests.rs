//! Property-based tests: RTL simulation vs gate-level elaboration, and
//! symbolic vs concrete domains.

#![allow(clippy::unwrap_used)]

use proptest::prelude::*;
use sfr_netlist::{logic_to_u64, u64_to_logic, CycleSim, Logic, NetlistBuilder};
use sfr_rtl::{
    elaborate_into, ConcreteDomain, DataSrc, Datapath, DatapathBuilder, DatapathSim, FuOp, InputId,
    RegId, SymbolicDomain,
};
use std::collections::HashMap;

fn any_op() -> impl Strategy<Value = FuOp> {
    prop_oneof![
        Just(FuOp::Add),
        Just(FuOp::Sub),
        Just(FuOp::Mul),
        Just(FuOp::And),
        Just(FuOp::Or),
        Just(FuOp::Xor),
        Just(FuOp::Lt),
        Just(FuOp::Pass),
    ]
}

/// A two-unit datapath with a mux, parameterized by the two ops.
fn build(op1: FuOp, op2: FuOp, width: usize) -> Datapath {
    let mut b = DatapathBuilder::new("p", width);
    let x = b.input("x");
    let y = b.input("y");
    let sel = b.select_line("S");
    let ld1 = b.load_line("L1");
    let ld2 = b.load_line("L2");
    let m = b.mux("m", &[sel], &[DataSrc::Input(x), DataSrc::Input(y)]);
    let f1 = b.fu("f1", op1, DataSrc::Mux(m), DataSrc::Input(y));
    let r1 = b.register("r1", ld1, DataSrc::Fu(f1));
    let f2 = b.fu("f2", op2, DataSrc::Reg(r1), DataSrc::Mux(m));
    let r2 = b.register("r2", ld2, DataSrc::Fu(f2));
    b.output("o", DataSrc::Reg(r2));
    b.status("s", DataSrc::Reg(r1));
    b.finish().expect("valid datapath")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Gate-level elaboration computes exactly what the RTL simulator
    /// computes, for random operation pairs and stimulus.
    #[test]
    fn elaboration_matches_rtl(
        op1 in any_op(),
        op2 in any_op(),
        stim in proptest::collection::vec((0u64..16, 0u64..16, 0u8..8), 1..12),
    ) {
        let dp = build(op1, op2, 4);
        // Gate harness.
        let mut nb = NetlistBuilder::new("g");
        let data: Vec<Vec<_>> = ["x", "y"]
            .iter()
            .map(|p| (0..4).map(|i| nb.input(format!("{p}{i}"))).collect())
            .collect();
        let ctrl: Vec<_> = ["S", "L1", "L2"].iter().map(|c| nb.input(*c)).collect();
        let nets = elaborate_into(&mut nb, &dp, &data, &ctrl);
        for &n in &nets.output_bits[0] {
            nb.mark_output(n);
        }
        nb.mark_output(nets.status_bits[0]);
        let nl = nb.finish().expect("valid");
        let mut gsim = CycleSim::new(&nl);
        gsim.reset_state(Logic::Zero);
        // RTL reference.
        let mut rsim = DatapathSim::new(&dp, ConcreteDomain::new(4));
        rsim.set_reg(RegId(0), Some(0));
        rsim.set_reg(RegId(1), Some(0));

        for &(x, y, c) in &stim {
            let word = [
                Logic::from_bool(c & 1 == 1),
                Logic::from_bool(c & 2 == 2),
                Logic::from_bool(c & 4 == 4),
            ];
            let mut gin = Vec::new();
            gin.extend(u64_to_logic(x, 4));
            gin.extend(u64_to_logic(y, 4));
            gin.extend_from_slice(&word);
            gsim.set_inputs(&gin);
            gsim.eval();
            let gout = gsim.outputs();
            let r = rsim.step(&word, &[Some(x), Some(y)]);
            prop_assert_eq!(logic_to_u64(&gout[..4]), r.outputs[0], "data out");
            prop_assert_eq!(
                logic_to_u64(&gout[4..5]),
                r.statuses[0].map(|v| v & 1),
                "status"
            );
            gsim.clock();
        }
    }

    /// The symbolic domain evaluates to exactly the concrete domain's
    /// values under any assignment (soundness of the SFR oracle's
    /// value model).
    #[test]
    fn symbolic_evaluates_to_concrete(
        op1 in any_op(),
        op2 in any_op(),
        stim in proptest::collection::vec((0u64..16, 0u64..16, 0u8..8), 1..10),
    ) {
        let dp = build(op1, op2, 4);
        let mut sym = DatapathSim::new(&dp, SymbolicDomain::new(4));
        let mut conc = DatapathSim::new(&dp, ConcreteDomain::new(4));
        // Identical boot values via named unknowns on the symbolic side
        // and concrete zeros on the concrete side: bind the names.
        let mut assignment: HashMap<(InputId, u64), u64> = HashMap::new();
        for r in 0..2 {
            let boot = sym.domain_mut().named_unknown(r as u32);
            sym.set_reg(RegId(r), boot);
            conc.set_reg(RegId(r), Some(0));
        }
        // Named unknowns are not in the assignment map, so symbolic
        // results containing them evaluate to None; concrete zeros give
        // a value. Comparison is only meaningful once expressions are
        // boot-free, so check: symbolic eval == concrete whenever the
        // symbolic eval is known.
        for (t, &(x, y, c)) in stim.iter().enumerate() {
            let word = [
                Logic::from_bool(c & 1 == 1),
                Logic::from_bool(c & 2 == 2),
                Logic::from_bool(c & 4 == 4),
            ];
            assignment.insert((InputId(0), t as u64), x);
            assignment.insert((InputId(1), t as u64), y);
            let sx = sym.domain_mut().input(InputId(0), t as u64);
            let sy = sym.domain_mut().input(InputId(1), t as u64);
            let sr = sym.step(&word, &[sx, sy]);
            let cr = conc.step(&word, &[Some(x), Some(y)]);
            for (se, ce) in sr.outputs.iter().zip(&cr.outputs) {
                if let Some(v) = sym.domain().eval(*se, &assignment) {
                    prop_assert_eq!(Some(v), *ce, "symbolic/concrete divergence");
                }
            }
        }
    }

    /// FuOp::apply is closed over the width: results always fit.
    #[test]
    fn ops_stay_in_range(op in any_op(), a in any::<u64>(), b in any::<u64>(), w in 1usize..17) {
        let r = op.apply(a, b, w);
        prop_assert!(r < (1u64 << w) || w >= 64);
    }
}
