//! Reproducible pseudorandom test sets.
//!
//! The paper evaluates power consistency over three 1200-pattern test
//! sets generated from a TPGR with different seeds, the third seeded with
//! "almost all 0s" to be deliberately less pseudorandom (Section 6,
//! Table 3). [`TestSet::paper_trio`] reproduces that setup.

use crate::lfsr::{Lfsr, UnsupportedWidthError};

/// The paper's test-set size: 1200 patterns.
pub const PAPER_PATTERNS: usize = 1200;

/// Seeds used for the three test sets (the third is near-all-0s).
pub const PAPER_SEEDS: [u32; 3] = [0xACE1, 0x5EED, 0x0001];

/// A sequence of input patterns for a `width`-bit data port.
///
/// # Examples
///
/// ```
/// use sfr_tpg::TestSet;
///
/// # fn main() -> Result<(), sfr_tpg::UnsupportedWidthError> {
/// let ts = TestSet::pseudorandom(4, 1200, 0xACE1)?;
/// assert_eq!(ts.len(), 1200);
/// assert!(ts.patterns().iter().all(|&p| p < 16));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TestSet {
    width: usize,
    seed: u32,
    patterns: Vec<u64>,
}

impl TestSet {
    /// Generates `count` patterns of `width` bits from a 16-stage TPGR
    /// seeded with `seed`.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedWidthError`] if the internal LFSR width (16)
    /// were unsupported — in practice this never fails, but the error is
    /// surfaced rather than unwrapped.
    pub fn pseudorandom(
        width: usize,
        count: usize,
        seed: u32,
    ) -> Result<Self, UnsupportedWidthError> {
        let mut lfsr = Lfsr::new(16, seed)?;
        let patterns = (0..count).map(|_| lfsr.next_word(width)).collect();
        Ok(TestSet {
            width,
            seed,
            patterns,
        })
    }

    /// Builds a test set from explicit patterns (values must fit `width`
    /// bits).
    ///
    /// # Panics
    ///
    /// Panics if any pattern does not fit in `width` bits.
    pub fn from_patterns(width: usize, patterns: Vec<u64>) -> Self {
        let m = if width >= 64 {
            u64::MAX
        } else {
            (1 << width) - 1
        };
        assert!(
            patterns.iter().all(|&p| p & !m == 0),
            "pattern wider than {width} bits"
        );
        TestSet {
            width,
            seed: 0,
            patterns,
        }
    }

    /// The paper's three 1200-pattern test sets for a port of the given
    /// width.
    ///
    /// # Errors
    ///
    /// Propagates [`UnsupportedWidthError`] from LFSR construction.
    pub fn paper_trio(width: usize) -> Result<[TestSet; 3], UnsupportedWidthError> {
        Ok([
            TestSet::pseudorandom(width, PAPER_PATTERNS, PAPER_SEEDS[0])?,
            TestSet::pseudorandom(width, PAPER_PATTERNS, PAPER_SEEDS[1])?,
            TestSet::pseudorandom(width, PAPER_PATTERNS, PAPER_SEEDS[2])?,
        ])
    }

    /// Pattern width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The seed used to generate the set (0 for explicit sets).
    pub fn seed(&self) -> u32 {
        self.seed
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// The raw patterns.
    pub fn patterns(&self) -> &[u64] {
        &self.patterns
    }

    /// Iterates the patterns.
    pub fn iter(&self) -> std::slice::Iter<'_, u64> {
        self.patterns.iter()
    }
}

impl<'a> IntoIterator for &'a TestSet {
    type Item = &'a u64;
    type IntoIter = std::slice::Iter<'a, u64>;
    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let a = TestSet::pseudorandom(4, 100, 0xACE1).unwrap();
        let b = TestSet::pseudorandom(4, 100, 0xACE1).unwrap();
        assert_eq!(a, b);
        let c = TestSet::pseudorandom(4, 100, 0x5EED).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn patterns_fit_width() {
        let ts = TestSet::pseudorandom(5, 500, 7).unwrap();
        assert!(ts.iter().all(|&p| p < 32));
    }

    #[test]
    fn paper_trio_shape() {
        let trio = TestSet::paper_trio(4).unwrap();
        for ts in &trio {
            assert_eq!(ts.len(), PAPER_PATTERNS);
            assert_eq!(ts.width(), 4);
        }
        assert_ne!(trio[0], trio[1]);
        assert_ne!(trio[1], trio[2]);
        assert_eq!(trio[2].seed(), 1);
    }

    #[test]
    fn pseudorandom_values_cover_range() {
        let ts = TestSet::pseudorandom(4, 1200, 0xACE1).unwrap();
        let mut seen = [false; 16];
        for &p in ts.iter() {
            seen[p as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 4-bit values should occur");
    }

    #[test]
    fn explicit_patterns_round_trip() {
        let ts = TestSet::from_patterns(4, vec![0, 15, 7]);
        assert_eq!(ts.patterns(), &[0, 15, 7]);
        assert_eq!((&ts).into_iter().count(), 3);
    }

    #[test]
    #[should_panic(expected = "wider")]
    fn explicit_patterns_validated() {
        let _ = TestSet::from_patterns(3, vec![8]);
    }
}
