//! Test pattern generation for integrated controller–datapath testing.
//!
//! The paper drives the datapath's primary data inputs from a TPGR — a
//! maximal-length LFSR — during the integrated fault-simulation step, and
//! studies power consistency over three 1200-pattern test sets with
//! different seeds (Table 3). This crate provides the [`Lfsr`] and the
//! reproducible [`TestSet`]s, including [`TestSet::paper_trio`].
//!
//! # Example
//!
//! ```
//! use sfr_tpg::TestSet;
//!
//! # fn main() -> Result<(), sfr_tpg::UnsupportedWidthError> {
//! let [t1, t2, t3] = TestSet::paper_trio(4)?;
//! assert_eq!(t1.len(), 1200);
//! assert_ne!(t1.patterns()[..10], t2.patterns()[..10]);
//! // The third set is seeded near-all-0s, as in the paper.
//! assert_eq!(t3.seed(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod lfsr;
mod testset;

pub use lfsr::{Lfsr, UnsupportedWidthError};
pub use testset::{TestSet, PAPER_PATTERNS, PAPER_SEEDS};
