//! Maximal-length linear feedback shift registers.
//!
//! The paper's integrated test applies pseudorandom patterns from a TPGR
//! (test pattern generation register) to the datapath data inputs. This
//! module provides Fibonacci LFSRs with maximal-length tap sets for widths
//! 2–32, so a width-`w` TPGR cycles through all `2^w − 1` nonzero states.

use std::fmt;

/// Maximal-length tap masks for the right-shift Galois form (bit
/// `width-1` is always set; bit `t-1` is set for every other tap `t` of
/// the primitive polynomial), indexed by `width - 2`. Standard table of
/// primitive polynomials over GF(2).
const TAPS: [u32; 30] = [
    0x3,        // 2: x^2 + x + 1
    0x6,        // 3: x^3 + x^2 + 1
    0xC,        // 4: x^4 + x^3 + 1
    0x14,       // 5: x^5 + x^3 + 1
    0x30,       // 6: x^6 + x^5 + 1
    0x60,       // 7: x^7 + x^6 + 1
    0xB8,       // 8: x^8 + x^6 + x^5 + x^4 + 1
    0x110,      // 9: x^9 + x^5 + 1
    0x240,      // 10: x^10 + x^7 + 1
    0x500,      // 11: x^11 + x^9 + 1
    0xE08,      // 12
    0x1C80,     // 13
    0x3802,     // 14
    0x6000,     // 15: x^15 + x^14 + 1
    0xD008,     // 16
    0x12000,    // 17: x^17 + x^14 + 1
    0x20400,    // 18: x^18 + x^11 + 1
    0x72000,    // 19
    0x90000,    // 20: x^20 + x^17 + 1
    0x140000,   // 21: x^21 + x^19 + 1
    0x300000,   // 22: x^22 + x^21 + 1
    0x420000,   // 23: x^23 + x^18 + 1
    0xE10000,   // 24
    0x1200000,  // 25: x^25 + x^22 + 1
    0x2000023,  // 26
    0x4000013,  // 27
    0x9000000,  // 28: x^28 + x^25 + 1
    0x14000000, // 29: x^29 + x^27 + 1
    0x20000029, // 30
    0x48000000, // 31: x^31 + x^28 + 1
];

/// Error constructing an [`Lfsr`] with an unsupported width.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedWidthError {
    /// The requested width.
    pub width: usize,
}

impl fmt::Display for UnsupportedWidthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LFSR width {} unsupported (need 2..=32)", self.width)
    }
}

impl std::error::Error for UnsupportedWidthError {}

/// A Galois LFSR with maximal-length taps.
///
/// # Examples
///
/// ```
/// use sfr_tpg::Lfsr;
///
/// # fn main() -> Result<(), sfr_tpg::UnsupportedWidthError> {
/// let mut lfsr = Lfsr::new(4, 0b1010)?;
/// // A 4-bit maximal LFSR visits all 15 nonzero states before repeating.
/// let start = lfsr.state();
/// let mut seen = std::collections::HashSet::new();
/// loop {
///     seen.insert(lfsr.state());
///     lfsr.step();
///     if lfsr.state() == start { break; }
/// }
/// assert_eq!(seen.len(), 15);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lfsr {
    state: u32,
    taps: u32,
    width: usize,
}

impl Lfsr {
    /// Creates an LFSR of the given width, seeded with `seed`.
    ///
    /// A zero seed (the lock-up state) is coerced to 1, mirroring hardware
    /// TPGRs that force a nonzero reset value.
    ///
    /// # Errors
    ///
    /// Returns [`UnsupportedWidthError`] unless `2 <= width <= 32`.
    pub fn new(width: usize, seed: u32) -> Result<Self, UnsupportedWidthError> {
        if !(2..=32).contains(&width) {
            return Err(UnsupportedWidthError { width });
        }
        let taps = if width == 32 {
            0x8020_0003
        } else {
            TAPS[width - 2]
        };
        let m = if width == 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        let mut state = seed & m;
        if state == 0 {
            state = 1;
        }
        Ok(Lfsr { state, taps, width })
    }

    /// The register width in bits.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Current register contents.
    pub fn state(&self) -> u32 {
        self.state
    }

    /// Advances one shift, returning the bit shifted out.
    ///
    /// Galois (one-to-many) form: the register shifts right and, when
    /// the output bit is 1, the tap mask is XORed in. A nonzero state
    /// can never reach zero (if the shift empties the register the tap
    /// mask is injected), so no lock-up state exists besides zero
    /// itself, which the constructor excludes.
    pub fn step(&mut self) -> bool {
        let out = self.state & 1 == 1;
        self.state >>= 1;
        if out {
            self.state ^= self.taps;
        }
        out
    }

    /// Produces the next `bits`-wide pseudorandom word (collected from
    /// successive output bits, LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `bits > 64`.
    pub fn next_word(&mut self, bits: usize) -> u64 {
        assert!(bits <= 64, "at most 64 bits per word");
        let mut w = 0u64;
        for i in 0..bits {
            if self.step() {
                w |= 1 << i;
            }
        }
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn rejects_bad_widths() {
        assert!(Lfsr::new(1, 1).is_err());
        assert!(Lfsr::new(33, 1).is_err());
        assert!(Lfsr::new(0, 1).is_err());
    }

    #[test]
    fn zero_seed_coerced() {
        let l = Lfsr::new(8, 0).unwrap();
        assert_ne!(l.state(), 0);
    }

    #[test]
    fn maximal_period_small_widths() {
        for width in 2..=16 {
            let mut l = Lfsr::new(width, 1).unwrap();
            let mut seen = HashSet::new();
            let period = loop {
                seen.insert(l.state());
                l.step();
                if l.state() == 1 {
                    break seen.len();
                }
                assert!(seen.len() <= 1 << width, "runaway at width {width}");
            };
            assert_eq!(period, (1usize << width) - 1, "width {width} not maximal");
            assert!(!seen.contains(&0), "zero state reached at width {width}");
        }
    }

    #[test]
    fn word_extraction_is_deterministic() {
        let mut a = Lfsr::new(16, 0xACE1).unwrap();
        let mut b = Lfsr::new(16, 0xACE1).unwrap();
        for _ in 0..32 {
            assert_eq!(a.next_word(4), b.next_word(4));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Lfsr::new(16, 0xACE1).unwrap();
        let mut b = Lfsr::new(16, 0x1234).unwrap();
        let wa: Vec<u64> = (0..16).map(|_| a.next_word(4)).collect();
        let wb: Vec<u64> = (0..16).map(|_| b.next_word(4)).collect();
        assert_ne!(wa, wb);
    }

    #[test]
    fn bits_reasonably_balanced() {
        let mut l = Lfsr::new(20, 0xBEEF).unwrap();
        let ones: u32 = (0..4000).map(|_| l.step() as u32).sum();
        // Expect ~2000 ones; allow generous slack.
        assert!((1700..=2300).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn width_32_runs() {
        let mut l = Lfsr::new(32, 0xDEAD_BEEF).unwrap();
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            l.step();
            seen.insert(l.state());
        }
        assert!(seen.len() > 990);
    }
}
