//! Crash-safe campaign checkpoint journal.
//!
//! A [`CampaignJournal`] records each completed unit of campaign work — a
//! Monte Carlo grade pack or a fault-simulation chunk — keyed by a record
//! kind and a pack/chunk index, together with a fingerprint tying the file
//! to one `(design, seed, config)` tuple. Payloads are opaque `u64` word
//! vectors; callers encode their results (e.g. `f64::to_bits`) so the
//! journal itself stays dependency-free and format-stable.
//!
//! Persistence is atomic at every step: each `record` serialises the full
//! journal to `<path>.tmp`, fsyncs it, renames it over `<path>`, and fsyncs
//! the parent directory. A `SIGKILL` at any instant therefore leaves either
//! the previous complete journal or the new complete journal on disk —
//! never a torn file. Every line additionally carries a CRC32 checksum as a
//! belt-and-braces guard against storage-level corruption; a record line
//! that fails its checksum is rejected at load with a descriptive error.
//!
//! The on-disk format is line-oriented text:
//!
//! ```text
//! sfr-journal v1
//! <crc32> H <fingerprint> <label>
//! <crc32> R <kind> <id> <n> <word>...
//! ```
//!
//! where `<crc32>` is the checksum of the rest of the line and all numeric
//! fields are lower-case hex. Records are append-ordered; re-recording an
//! existing key with an identical payload is a no-op, while a conflicting
//! payload is reported as corruption (it means two runs with the same
//! fingerprint disagreed, which the determinism contract forbids).

#![forbid(unsafe_code)]
#![deny(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// What kind of campaign work a record checkpoints.
///
/// The kind is part of the record key, so fault-simulation chunks and grade
/// packs can share one journal file without their indices colliding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RecordKind {
    /// One fault-simulation chunk (classification phase).
    FaultSim,
    /// One Monte Carlo power-grading pack.
    GradePack,
}

impl RecordKind {
    fn tag(self) -> &'static str {
        match self {
            RecordKind::FaultSim => "faultsim",
            RecordKind::GradePack => "grade",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "faultsim" => Some(RecordKind::FaultSim),
            "grade" => Some(RecordKind::GradePack),
            _ => None,
        }
    }

    /// The canonical cross-link key of record `(self, id)` — the id
    /// observability traces use to point an incident at the journal
    /// entry that replays it (`"grade/3"`, `"faultsim/0"`).
    pub fn key(self, id: u64) -> String {
        format!("{}/{id}", self.tag())
    }
}

impl fmt::Display for RecordKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.tag())
    }
}

/// Errors surfaced when opening or validating a journal.
///
/// Write-side I/O failures during [`CampaignJournal::record`] deliberately do
/// *not* appear here: a study must not abort because its checkpoint device
/// filled up, so the journal instead degrades to in-memory operation and
/// reports the failure through [`CampaignJournal::degradation`].
#[derive(Debug)]
pub enum JournalError {
    /// Filesystem error while opening, reading, or creating the journal.
    Io { path: PathBuf, source: io::Error },
    /// The file exists but is not a loadable journal.
    Corrupt {
        path: PathBuf,
        line: usize,
        message: String,
    },
    /// The journal was written by a campaign with a different fingerprint
    /// (different design, seed, or configuration).
    Mismatch {
        path: PathBuf,
        expected: u64,
        found: u64,
        label: String,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            JournalError::Corrupt {
                path,
                line,
                message,
            } => {
                write!(
                    f,
                    "journal {} is corrupt at line {line}: {message}",
                    path.display()
                )
            }
            JournalError::Mismatch {
                path,
                expected,
                found,
                label,
            } => {
                write!(
                    f,
                    "journal {} belongs to a different campaign \
                     (fingerprint {found:016x} [{label}], this run is {expected:016x}); \
                     delete the file or point --checkpoint/--resume elsewhere",
                    path.display()
                )
            }
        }
    }
}

impl std::error::Error for JournalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

const MAGIC: &str = "sfr-journal v1";

/// CRC32 (IEEE 802.3, reflected) over `bytes`. Table-free bitwise variant:
/// journal lines are short and written once per completed pack, so
/// simplicity beats throughput here.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xedb8_8320 & mask);
        }
    }
    !crc
}

/// Pack a UTF-8 string into `u64` words (length-prefixed, little-endian
/// bytes) so free-form text such as panic messages can ride in a journal
/// payload.
pub fn encode_str(s: &str) -> Vec<u64> {
    let bytes = s.as_bytes();
    let mut words = Vec::with_capacity(1 + bytes.len().div_ceil(8));
    words.push(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        words.push(u64::from_le_bytes(w));
    }
    words
}

/// Inverse of [`encode_str`]. Returns the decoded string and the number of
/// words consumed, or `None` if the words do not describe a valid string.
pub fn decode_str(words: &[u64]) -> Option<(String, usize)> {
    let (&len, rest) = words.split_first()?;
    let len = usize::try_from(len).ok()?;
    let n_words = len.div_ceil(8);
    if rest.len() < n_words {
        return None;
    }
    let mut bytes = Vec::with_capacity(len);
    for &w in &rest[..n_words] {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    bytes.truncate(len);
    String::from_utf8(bytes).ok().map(|s| (s, 1 + n_words))
}

#[derive(Debug)]
struct JournalState {
    records: BTreeMap<(RecordKind, u64), Vec<u64>>,
    /// Append order of keys, preserved across save/load so resumed files
    /// serialise identically to uninterrupted ones.
    order: Vec<(RecordKind, u64)>,
    /// First write-side failure, if any; once set, persistence stops and the
    /// journal runs in-memory only.
    degraded: Option<String>,
    /// Set when [`CampaignJournal::open`] recovered from a torn final line
    /// (crash-truncated or CRC-failing tail) by dropping it.
    torn_tail: Option<String>,
}

/// An append-only, checksummed, atomically-persisted checkpoint journal.
///
/// Thread-safe: `record` takes `&self` and may be called concurrently from
/// campaign worker threads; an internal mutex serialises writes.
#[derive(Debug)]
pub struct CampaignJournal {
    path: PathBuf,
    fingerprint: u64,
    label: String,
    state: Mutex<JournalState>,
}

impl CampaignJournal {
    /// Create a fresh journal at `path`, replacing any existing file.
    ///
    /// `fingerprint` ties the file to one campaign configuration; `label` is
    /// a human-readable description stored alongside it (e.g. the study
    /// name) and must not contain newlines.
    pub fn create(
        path: impl Into<PathBuf>,
        fingerprint: u64,
        label: &str,
    ) -> Result<Self, JournalError> {
        let journal = CampaignJournal {
            path: path.into(),
            fingerprint,
            label: label.replace(['\n', '\r'], " "),
            state: Mutex::new(JournalState {
                records: BTreeMap::new(),
                order: Vec::new(),
                degraded: None,
                torn_tail: None,
            }),
        };
        let state = journal.lock();
        journal.persist(&state).map_err(|source| JournalError::Io {
            path: journal.path.clone(),
            source,
        })?;
        drop(state);
        Ok(journal)
    }

    /// Open an existing journal, verifying magic and per-line checksums.
    ///
    /// A damaged **final** line — the signature of a crash- or
    /// storage-truncated tail — is tolerated: the tail is dropped (that
    /// unit of work recomputes), the truncated journal is persisted back
    /// to disk, and [`Self::torn_tail`] reports what happened. Damage
    /// anywhere else still rejects the file as
    /// [`JournalError::Corrupt`].
    pub fn open(path: impl Into<PathBuf>) -> Result<Self, JournalError> {
        let path = path.into();
        let mut text = String::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|source| JournalError::Io {
                path: path.clone(),
                source,
            })?;
        let journal = Self::parse(path, &text)?;
        {
            let mut state = journal.lock();
            if state.torn_tail.is_some() {
                // Persist the recovery so the damaged line never has to
                // be re-dropped; a write failure here degrades exactly
                // like a failed record() — the campaign still runs.
                if let Err(err) = journal.persist(&state) {
                    state.degraded = Some(format!(
                        "checkpoint persistence disabled after I/O error on {}: {err}",
                        journal.path.display()
                    ));
                }
            }
        }
        Ok(journal)
    }

    /// Open `path` if it exists (validating its fingerprint against
    /// `fingerprint`), otherwise create it. This is the `--checkpoint`
    /// entry point: the first run creates the file and an interrupted rerun
    /// picks up where it left off.
    pub fn open_or_create(
        path: impl Into<PathBuf>,
        fingerprint: u64,
        label: &str,
    ) -> Result<Self, JournalError> {
        let path = path.into();
        if path.exists() {
            let journal = Self::open(&path)?;
            journal.check_fingerprint(fingerprint)?;
            Ok(journal)
        } else {
            Self::create(path, fingerprint, label)
        }
    }

    /// Verify this journal belongs to the campaign identified by `expected`.
    pub fn check_fingerprint(&self, expected: u64) -> Result<(), JournalError> {
        if self.fingerprint == expected {
            Ok(())
        } else {
            Err(JournalError::Mismatch {
                path: self.path.clone(),
                expected,
                found: self.fingerprint,
                label: self.label.clone(),
            })
        }
    }

    fn parse(path: PathBuf, text: &str) -> Result<Self, JournalError> {
        let corrupt = |line: usize, message: String| JournalError::Corrupt {
            path: path.clone(),
            line,
            message,
        };
        let mut lines = text.lines().enumerate();
        match lines.next() {
            Some((_, magic)) if magic == MAGIC => {}
            Some((_, other)) => {
                return Err(corrupt(1, format!("bad magic {other:?}, want {MAGIC:?}")))
            }
            None => return Err(corrupt(1, "empty file".to_string())),
        }

        let mut fingerprint = None;
        let mut label = String::new();
        let mut records = BTreeMap::new();
        let mut order = Vec::new();
        let mut torn_tail = None;

        let body_lines: Vec<(usize, &str)> = lines.collect();
        let last_nonempty = body_lines.iter().rposition(|(_, l)| !l.is_empty());
        for (pos, &(idx, line)) in body_lines.iter().enumerate() {
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            let parsed = Self::parse_line(
                &corrupt,
                lineno,
                line,
                &mut fingerprint,
                &mut label,
                &mut records,
                &mut order,
            );
            if let Err(err) = parsed {
                // A damaged *final* record line is the signature of a
                // crash-truncated (or storage-torn) tail: everything
                // before it checks out, so the journal recovers by
                // dropping the tail — that one unit of work simply
                // recomputes. Damage anywhere else (or before a valid
                // header exists) still rejects the file.
                if Some(pos) == last_nonempty && fingerprint.is_some() {
                    let detail = match &err {
                        JournalError::Corrupt { message, .. } => message.clone(),
                        other => other.to_string(),
                    };
                    torn_tail = Some(format!("dropped torn final line {lineno}: {detail}"));
                    break;
                }
                return Err(err);
            }
        }

        let fingerprint = fingerprint.ok_or_else(|| {
            corrupt(
                1,
                "no header line; file was never completely written".to_string(),
            )
        })?;
        Ok(CampaignJournal {
            path,
            fingerprint,
            label,
            state: Mutex::new(JournalState {
                records,
                order,
                degraded: None,
                torn_tail,
            }),
        })
    }

    /// Parses one non-empty journal line into the accumulating state.
    #[allow(clippy::too_many_arguments)]
    fn parse_line(
        corrupt: &dyn Fn(usize, String) -> JournalError,
        lineno: usize,
        line: &str,
        fingerprint: &mut Option<u64>,
        label: &mut String,
        records: &mut BTreeMap<(RecordKind, u64), Vec<u64>>,
        order: &mut Vec<(RecordKind, u64)>,
    ) -> Result<(), JournalError> {
        let (crc_field, body) = line
            .split_once(' ')
            .ok_or_else(|| corrupt(lineno, "missing checksum field".to_string()))?;
        let crc = u32::from_str_radix(crc_field, 16)
            .map_err(|_| corrupt(lineno, format!("bad checksum field {crc_field:?}")))?;
        let actual = crc32(body.as_bytes());
        if crc != actual {
            return Err(corrupt(
                lineno,
                format!("checksum mismatch: stored {crc:08x}, computed {actual:08x}"),
            ));
        }
        let mut fields = body.split(' ');
        match fields.next() {
            Some("H") => {
                let fp_field = fields
                    .next()
                    .ok_or_else(|| corrupt(lineno, "header missing fingerprint".into()))?;
                let fp = u64::from_str_radix(fp_field, 16)
                    .map_err(|_| corrupt(lineno, format!("bad fingerprint {fp_field:?}")))?;
                *fingerprint = Some(fp);
                *label = fields.collect::<Vec<_>>().join(" ");
            }
            Some("R") => {
                let kind_field = fields
                    .next()
                    .ok_or_else(|| corrupt(lineno, "record missing kind".into()))?;
                let kind = RecordKind::from_tag(kind_field)
                    .ok_or_else(|| corrupt(lineno, format!("unknown kind {kind_field:?}")))?;
                let id_field = fields
                    .next()
                    .ok_or_else(|| corrupt(lineno, "record missing id".into()))?;
                let id = u64::from_str_radix(id_field, 16)
                    .map_err(|_| corrupt(lineno, format!("bad id {id_field:?}")))?;
                let n_field = fields
                    .next()
                    .ok_or_else(|| corrupt(lineno, "record missing length".into()))?;
                let n = usize::from_str_radix(n_field, 16)
                    .map_err(|_| corrupt(lineno, format!("bad length {n_field:?}")))?;
                let mut words = Vec::with_capacity(n);
                for w in fields {
                    let word = u64::from_str_radix(w, 16)
                        .map_err(|_| corrupt(lineno, format!("bad word {w:?}")))?;
                    words.push(word);
                }
                if words.len() != n {
                    return Err(corrupt(
                        lineno,
                        format!("length says {n} words, line has {}", words.len()),
                    ));
                }
                let key = (kind, id);
                if records.insert(key, words).is_none() {
                    order.push(key);
                }
            }
            Some(other) => {
                return Err(corrupt(lineno, format!("unknown line tag {other:?}")));
            }
            None => return Err(corrupt(lineno, "blank body".into())),
        }
        Ok(())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, JournalState> {
        // A panic while holding the lock leaves only fully-written in-memory
        // state behind (records are inserted atomically), so the poisoned
        // state is still valid.
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// The fingerprint this journal was created with.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Human-readable campaign label stored in the header.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Path of the on-disk journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of checkpointed records.
    pub fn len(&self) -> usize {
        self.lock().records.len()
    }

    /// True if no work has been checkpointed yet.
    pub fn is_empty(&self) -> bool {
        self.lock().records.is_empty()
    }

    /// Fetch the payload checkpointed for `(kind, id)`, if any.
    pub fn get(&self, kind: RecordKind, id: u64) -> Option<Vec<u64>> {
        self.lock().records.get(&(kind, id)).cloned()
    }

    /// All records in append order — `(kind, id, payload)` triples. Used by
    /// tests to build truncated journals simulating a mid-campaign kill.
    pub fn entries(&self) -> Vec<(RecordKind, u64, Vec<u64>)> {
        let state = self.lock();
        state
            .order
            .iter()
            .filter_map(|key| state.records.get(key).map(|w| (key.0, key.1, w.clone())))
            .collect()
    }

    /// If a write-side I/O error occurred, the message describing it. The
    /// journal keeps operating in memory after such a failure so the study
    /// itself still completes; callers surface this as an incident.
    pub fn degradation(&self) -> Option<String> {
        self.lock().degraded.clone()
    }

    /// If [`Self::open`] recovered from a torn final line by dropping it,
    /// the message describing the recovery. The dropped unit of work is
    /// simply recomputed by the resuming campaign.
    pub fn torn_tail(&self) -> Option<String> {
        self.lock().torn_tail.clone()
    }

    /// Checkpoint `(kind, id)` with `words` and atomically persist the
    /// journal. Re-recording an identical payload is a no-op; a conflicting
    /// payload panics in debug builds (it violates the determinism contract)
    /// and keeps the first payload in release builds.
    ///
    /// Never fails the campaign: on I/O error the journal degrades to
    /// in-memory operation (see [`Self::degradation`]).
    pub fn record(&self, kind: RecordKind, id: u64, words: &[u64]) {
        let mut state = self.lock();
        let key = (kind, id);
        if let Some(existing) = state.records.get(&key) {
            debug_assert_eq!(
                existing, words,
                "journal record {kind}/{id} re-recorded with a different payload"
            );
            return;
        }
        state.records.insert(key, words.to_vec());
        state.order.push(key);
        if state.degraded.is_none() {
            if let Err(err) = self.persist(&state) {
                state.degraded = Some(format!(
                    "checkpoint persistence disabled after I/O error on {}: {err}",
                    self.path.display()
                ));
            }
        }
    }

    fn serialize(&self, state: &JournalState) -> String {
        let mut out = String::new();
        out.push_str(MAGIC);
        out.push('\n');
        let header = if self.label.is_empty() {
            format!("H {:016x}", self.fingerprint)
        } else {
            format!("H {:016x} {}", self.fingerprint, self.label)
        };
        out.push_str(&format!("{:08x} {header}\n", crc32(header.as_bytes())));
        for key in &state.order {
            if let Some(words) = state.records.get(key) {
                let mut body = format!("R {} {:x} {:x}", key.0, key.1, words.len());
                for w in words {
                    body.push_str(&format!(" {w:x}"));
                }
                out.push_str(&format!("{:08x} {body}\n", crc32(body.as_bytes())));
            }
        }
        out
    }

    /// Write-tmp-then-rename with fsync on both the file and its directory:
    /// a kill at any instant leaves either the old or the new journal.
    fn persist(&self, state: &JournalState) -> io::Result<()> {
        let text = self.serialize(state);
        let tmp = self.path.with_extension("journal.tmp");
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(text.as_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        if let Some(dir) = self.path.parent() {
            // Syncing the directory makes the rename itself durable; some
            // filesystems do not allow opening a directory for sync, so
            // treat that as best-effort.
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("sfr-journal-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_records_through_disk() {
        let path = tmp_path("roundtrip");
        let j = CampaignJournal::create(&path, 0xDEAD_BEEF, "poly w=8").expect("create");
        j.record(RecordKind::GradePack, 0, &[1, 2, 3]);
        j.record(RecordKind::FaultSim, 7, &[u64::MAX]);
        j.record(RecordKind::GradePack, 1, &[]);
        assert!(j.degradation().is_none());

        let r = CampaignJournal::open(&path).expect("open");
        assert_eq!(r.fingerprint(), 0xDEAD_BEEF);
        assert_eq!(r.label(), "poly w=8");
        assert_eq!(r.get(RecordKind::GradePack, 0), Some(vec![1, 2, 3]));
        assert_eq!(r.get(RecordKind::FaultSim, 7), Some(vec![u64::MAX]));
        assert_eq!(r.get(RecordKind::GradePack, 1), Some(vec![]));
        assert_eq!(r.get(RecordKind::GradePack, 2), None);
        assert_eq!(r.len(), 3);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn open_or_create_validates_fingerprint() {
        let path = tmp_path("fingerprint");
        CampaignJournal::create(&path, 42, "a").expect("create");
        let ok = CampaignJournal::open_or_create(&path, 42, "a");
        assert!(ok.is_ok());
        let err = CampaignJournal::open_or_create(&path, 43, "b");
        match err {
            Err(JournalError::Mismatch {
                expected, found, ..
            }) => {
                assert_eq!(expected, 43);
                assert_eq!(found, 42);
            }
            other => panic!("want Mismatch, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupted_line_is_rejected_with_location() {
        let path = tmp_path("corrupt");
        let j = CampaignJournal::create(&path, 1, "x").expect("create");
        j.record(RecordKind::GradePack, 0, &[0xAB]);
        j.record(RecordKind::GradePack, 1, &[0xCD]);
        let mut text = fs::read_to_string(&path).expect("read");
        // Flip a payload character in the FIRST record without updating
        // its checksum: mid-file damage is never torn-tail recoverable.
        text = text.replace(" ab", " ac");
        fs::write(&path, text).expect("write");
        match CampaignJournal::open(&path) {
            Err(JournalError::Corrupt { line, message, .. }) => {
                assert_eq!(line, 3);
                assert!(message.contains("checksum mismatch"), "{message}");
            }
            other => panic!("want Corrupt, got {other:?}"),
        }
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corrupted_final_line_is_recovered_as_torn_tail() {
        let path = tmp_path("torn-crc");
        let j = CampaignJournal::create(&path, 1, "x").expect("create");
        j.record(RecordKind::GradePack, 0, &[0xAB]);
        j.record(RecordKind::GradePack, 1, &[0xCD]);
        let mut text = fs::read_to_string(&path).expect("read");
        // Damage the FINAL record's payload without updating its
        // checksum — indistinguishable from a storage-torn tail.
        text = text.replace(" cd", " ce");
        fs::write(&path, text).expect("write");
        let r = CampaignJournal::open(&path).expect("torn tail recovers");
        assert_eq!(r.get(RecordKind::GradePack, 0), Some(vec![0xAB]));
        assert_eq!(r.get(RecordKind::GradePack, 1), None, "tail dropped");
        let note = r.torn_tail().expect("recovery reported");
        assert!(note.contains("line 4"), "{note}");
        assert!(r.degradation().is_none());
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn rerecording_same_payload_is_idempotent() {
        let path = tmp_path("idempotent");
        let j = CampaignJournal::create(&path, 1, "x").expect("create");
        j.record(RecordKind::GradePack, 3, &[9, 9]);
        j.record(RecordKind::GradePack, 3, &[9, 9]);
        assert_eq!(j.len(), 1);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncated_final_line_recovers_and_resumes_cleanly() {
        // The rename protocol should prevent torn files, but if one
        // appears anyway (storage-level truncation after a kill) the
        // journal drops the torn tail, keeps every intact record, and
        // persists the truncation so the next open is clean.
        let path = tmp_path("torn");
        let j = CampaignJournal::create(&path, 1, "x").expect("create");
        j.record(RecordKind::GradePack, 0, &[10, 20]);
        j.record(RecordKind::GradePack, 1, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let text = fs::read_to_string(&path).expect("read");
        let cut = text.len() - 5;
        fs::write(&path, &text[..cut]).expect("write");
        let r = CampaignJournal::open(&path).expect("torn tail recovers");
        assert_eq!(r.get(RecordKind::GradePack, 0), Some(vec![10, 20]));
        assert_eq!(r.get(RecordKind::GradePack, 1), None, "torn record lost");
        assert!(r.torn_tail().is_some());
        // The truncation was persisted: re-recording the lost pack and
        // reopening yields a fully intact journal with no recovery note.
        r.record(RecordKind::GradePack, 1, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let clean = CampaignJournal::open(&path).expect("reopen");
        assert!(clean.torn_tail().is_none());
        assert_eq!(
            clean.get(RecordKind::GradePack, 1),
            Some(vec![1, 2, 3, 4, 5, 6, 7, 8])
        );
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn truncation_before_any_record_still_rejects() {
        // A torn HEADER is not recoverable: without a fingerprint the
        // file cannot be tied to a campaign.
        let path = tmp_path("torn-header");
        CampaignJournal::create(&path, 1, "x").expect("create");
        let text = fs::read_to_string(&path).expect("read");
        let cut = text.len() - 3;
        fs::write(&path, &text[..cut]).expect("write");
        assert!(matches!(
            CampaignJournal::open(&path),
            Err(JournalError::Corrupt { .. })
        ));
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn str_payloads_roundtrip() {
        for s in ["", "x", "panic: index out of bounds — lane 64", "exactly8!"] {
            let words = encode_str(s);
            let (back, used) = decode_str(&words).expect("decode");
            assert_eq!(back, s);
            assert_eq!(used, words.len());
        }
        assert!(decode_str(&[]).is_none());
        assert!(decode_str(&[100]).is_none()); // claims 100 bytes, has none
    }

    #[test]
    fn entries_preserve_append_order() {
        let path = tmp_path("order");
        let j = CampaignJournal::create(&path, 1, "x").expect("create");
        j.record(RecordKind::GradePack, 5, &[5]);
        j.record(RecordKind::GradePack, 1, &[1]);
        j.record(RecordKind::FaultSim, 0, &[0]);
        let e = j.entries();
        assert_eq!(
            e.iter().map(|(k, i, _)| (*k, *i)).collect::<Vec<_>>(),
            vec![
                (RecordKind::GradePack, 5),
                (RecordKind::GradePack, 1),
                (RecordKind::FaultSim, 0),
            ]
        );
        // Order survives a reload.
        let r = CampaignJournal::open(&path).expect("open");
        assert_eq!(r.entries(), e);
        let _ = fs::remove_file(&path);
    }
}
