//! Energy bookkeeping: turning switching activity into dynamic power.
//!
//! Classic toggle-count estimation: `P = ½ · Vdd² · Σᵢ Cᵢ · αᵢ · f`, where
//! the sum runs over nets (switched load capacitance per `0↔1` toggle) and
//! over sequential cells (internal clock capacitance per clock event).
//! The clock term is what makes the paper's register-load faults
//! *guaranteed* power increases: an extra load un-gates a register's clock
//! for a cycle, spending clock energy even when the data does not change.

use sfr_netlist::{Activity, Netlist};

/// Electrical operating point for power estimation.
///
/// Defaults are 0.8 µm-era values: 5 V supply, 20 MHz clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock frequency in hertz.
    pub freq_hz: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            vdd: 5.0,
            freq_hz: 20.0e6,
        }
    }
}

impl PowerConfig {
    /// Energy in femtojoules for one full swing of `cap_ff` femtofarads.
    #[inline]
    pub fn swing_energy_fj(&self, cap_ff: f64) -> f64 {
        0.5 * cap_ff * self.vdd * self.vdd
    }
}

/// A power estimate with its contributions separated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Total average dynamic power in microwatts.
    pub total_uw: f64,
    /// Contribution of net (logic + wire) switching, µW.
    pub switching_uw: f64,
    /// Contribution of sequential-cell clock events, µW.
    pub clock_uw: f64,
    /// Cycles the estimate averaged over.
    pub cycles: u64,
}

impl PowerReport {
    /// Percentage change of `self` relative to `baseline`
    /// (`+` means more power).
    ///
    /// # Examples
    ///
    /// ```
    /// use sfr_power_model::PowerReport;
    ///
    /// let base = PowerReport { total_uw: 1000.0, ..Default::default() };
    /// let faulty = PowerReport { total_uw: 1050.0, ..Default::default() };
    /// assert!((faulty.percent_change_from(&base) - 5.0).abs() < 1e-9);
    /// ```
    pub fn percent_change_from(&self, baseline: &PowerReport) -> f64 {
        100.0 * (self.total_uw - baseline.total_uw) / baseline.total_uw
    }
}

/// Converts accumulated [`Activity`] on `nl` into average power.
///
/// Returns a zero report for zero-cycle activity rather than dividing by
/// zero.
pub fn power_from_activity(nl: &Netlist, act: &Activity, cfg: &PowerConfig) -> PowerReport {
    power_from_activity_where(nl, act, cfg, |_| true)
}

/// Like [`power_from_activity`], but restricted to the sub-circuit whose
/// driver gates satisfy `include`.
///
/// A net contributes when its driving gate is included (primary-input
/// nets, having no driver, are excluded — their energy belongs to the
/// environment); a sequential cell's clock energy contributes when the
/// cell is included. The paper reports "power consumed by the datapath",
/// i.e. the system minus the controller — pass a predicate over the
/// controller's gate range to reproduce that accounting.
pub fn power_from_activity_where(
    nl: &Netlist,
    act: &Activity,
    cfg: &PowerConfig,
    include: impl Fn(sfr_netlist::GateId) -> bool,
) -> PowerReport {
    if act.cycles == 0 {
        return PowerReport::default();
    }
    let mut switching_fj = 0.0;
    for net in nl.net_ids() {
        let toggles = act.net_toggles[net.index()];
        if toggles > 0 {
            if let Some(driver) = nl.driver(net) {
                if include(driver) {
                    switching_fj += toggles as f64 * cfg.swing_energy_fj(nl.net_cap_ff(net));
                }
            }
        }
    }
    let mut clock_fj = 0.0;
    for &g in nl.sequential_gates() {
        let events = act.clock_events[g.index()];
        if events > 0 && include(g) {
            clock_fj += events as f64 * cfg.swing_energy_fj(nl.gate(g).kind().clock_cap_ff());
        }
    }
    // P(µW) = E(fJ) · 1e-15 / (cycles / f) · 1e6 = E·f/cycles · 1e-9.
    let scale = cfg.freq_hz / act.cycles as f64 * 1e-9;
    let switching_uw = switching_fj * scale;
    let clock_uw = clock_fj * scale;
    PowerReport {
        total_uw: switching_uw + clock_uw,
        switching_uw,
        clock_uw,
        cycles: act.cycles,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfr_netlist::{CellKind, CycleSim, Logic, NetlistBuilder};

    fn toggler() -> sfr_netlist::Netlist {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d");
        let en = b.input("en");
        let q = b.net("q");
        b.gate(CellKind::Dffe, "r", &[d, en], q);
        let o = b.gate_net(CellKind::Inv, "i", &[q]);
        b.mark_output(o);
        b.finish().unwrap()
    }

    #[test]
    fn zero_cycles_zero_power() {
        let nl = toggler();
        let act = Activity::default();
        let p = power_from_activity(
            &nl,
            &Activity {
                net_toggles: vec![0; nl.net_count()],
                clock_events: vec![0; nl.gate_count()],
                cycles: 0,
            },
            &PowerConfig::default(),
        );
        assert_eq!(p.total_uw, 0.0);
        let _ = act;
    }

    #[test]
    fn extra_register_loads_increase_power() {
        let nl = toggler();
        let cfg = PowerConfig::default();
        // Scenario A: load once, then idle (gated clock quiet).
        let mut a = CycleSim::new(&nl);
        a.track_activity(true);
        a.reset_state(Logic::Zero);
        a.step(&[Logic::One, Logic::One]);
        for _ in 0..9 {
            a.step(&[Logic::One, Logic::Zero]);
        }
        let pa = power_from_activity(&nl, a.activity(), &cfg);
        // Scenario B: identical data, but the enable is stuck high — the
        // register reloads the same value every cycle.
        let mut bsim = CycleSim::new(&nl);
        bsim.track_activity(true);
        bsim.reset_state(Logic::Zero);
        for _ in 0..10 {
            bsim.step(&[Logic::One, Logic::One]);
        }
        let pb = power_from_activity(&nl, bsim.activity(), &cfg);
        assert!(
            pb.total_uw > pa.total_uw,
            "extra loads must cost clock energy: {pa:?} vs {pb:?}"
        );
        assert!(pb.clock_uw > pa.clock_uw);
    }

    #[test]
    fn power_scales_with_frequency() {
        let nl = toggler();
        let mut sim = CycleSim::new(&nl);
        sim.track_activity(true);
        sim.reset_state(Logic::Zero);
        for i in 0..20 {
            sim.step(&[Logic::from_bool(i % 2 == 0), Logic::One]);
        }
        let slow = power_from_activity(
            &nl,
            sim.activity(),
            &PowerConfig {
                freq_hz: 10e6,
                ..Default::default()
            },
        );
        let fast = power_from_activity(
            &nl,
            sim.activity(),
            &PowerConfig {
                freq_hz: 20e6,
                ..Default::default()
            },
        );
        assert!((fast.total_uw / slow.total_uw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percent_change() {
        let a = PowerReport {
            total_uw: 200.0,
            ..Default::default()
        };
        let b = PowerReport {
            total_uw: 150.0,
            ..Default::default()
        };
        assert!((b.percent_change_from(&a) + 25.0).abs() < 1e-9);
    }

    #[test]
    fn swing_energy_quadratic_in_vdd() {
        let c5 = PowerConfig {
            vdd: 5.0,
            freq_hz: 1.0,
        };
        let c25 = PowerConfig {
            vdd: 2.5,
            freq_hz: 1.0,
        };
        assert!((c5.swing_energy_fj(10.0) / c25.swing_energy_fj(10.0) - 4.0).abs() < 1e-9);
    }
}
