//! Energy bookkeeping: turning switching activity into dynamic power.
//!
//! Classic toggle-count estimation: `P = ½ · Vdd² · Σᵢ Cᵢ · αᵢ · f`, where
//! the sum runs over nets (switched load capacitance per `0↔1` toggle) and
//! over sequential cells (internal clock capacitance per clock event).
//! The clock term is what makes the paper's register-load faults
//! *guaranteed* power increases: an extra load un-gates a register's clock
//! for a cycle, spending clock energy even when the data does not change.

use sfr_netlist::{
    Activity, ActivityMismatch, LaneActivity, LaneCounts, Netlist, TapeActivity, TapeWord,
};

/// Electrical operating point for power estimation.
///
/// Defaults are 0.8 µm-era values: 5 V supply, 20 MHz clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerConfig {
    /// Supply voltage in volts.
    pub vdd: f64,
    /// Clock frequency in hertz.
    pub freq_hz: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            vdd: 5.0,
            freq_hz: 20.0e6,
        }
    }
}

impl PowerConfig {
    /// Energy in femtojoules for one full swing of `cap_ff` femtofarads.
    #[inline]
    pub fn swing_energy_fj(&self, cap_ff: f64) -> f64 {
        0.5 * cap_ff * self.vdd * self.vdd
    }
}

/// A power estimate with its contributions separated.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PowerReport {
    /// Total average dynamic power in microwatts.
    pub total_uw: f64,
    /// Contribution of net (logic + wire) switching, µW.
    pub switching_uw: f64,
    /// Contribution of sequential-cell clock events, µW.
    pub clock_uw: f64,
    /// Cycles the estimate averaged over.
    pub cycles: u64,
}

impl PowerReport {
    /// Percentage change of `self` relative to `baseline`
    /// (`+` means more power).
    ///
    /// # Examples
    ///
    /// ```
    /// use sfr_power_model::PowerReport;
    ///
    /// let base = PowerReport { total_uw: 1000.0, ..Default::default() };
    /// let faulty = PowerReport { total_uw: 1050.0, ..Default::default() };
    /// assert!((faulty.percent_change_from(&base) - 5.0).abs() < 1e-9);
    /// ```
    pub fn percent_change_from(&self, baseline: &PowerReport) -> f64 {
        100.0 * (self.total_uw - baseline.total_uw) / baseline.total_uw
    }
}

/// Converts accumulated [`Activity`] on `nl` into average power.
///
/// Returns a zero report for zero-cycle activity rather than dividing by
/// zero.
pub fn power_from_activity(nl: &Netlist, act: &Activity, cfg: &PowerConfig) -> PowerReport {
    power_from_activity_where(nl, act, cfg, |_| true)
}

/// Like [`power_from_activity`], but restricted to the sub-circuit whose
/// driver gates satisfy `include`.
///
/// A net contributes when its driving gate is included (primary-input
/// nets, having no driver, are excluded — their energy belongs to the
/// environment); a sequential cell's clock energy contributes when the
/// cell is included. The paper reports "power consumed by the datapath",
/// i.e. the system minus the controller — pass a predicate over the
/// controller's gate range to reproduce that accounting.
pub fn power_from_activity_where(
    nl: &Netlist,
    act: &Activity,
    cfg: &PowerConfig,
    include: impl Fn(sfr_netlist::GateId) -> bool,
) -> PowerReport {
    if act.cycles == 0 {
        return PowerReport::default();
    }
    let mut switching_fj = 0.0;
    for net in nl.net_ids() {
        let toggles = act.net_toggles[net.index()];
        if toggles > 0 {
            if let Some(driver) = nl.driver(net) {
                if include(driver) {
                    switching_fj += toggles as f64 * cfg.swing_energy_fj(nl.net_cap_ff(net));
                }
            }
        }
    }
    let mut clock_fj = 0.0;
    for &g in nl.sequential_gates() {
        let events = act.clock_events[g.index()];
        if events > 0 && include(g) {
            clock_fj += events as f64 * cfg.swing_energy_fj(nl.gate(g).kind().clock_cap_ff());
        }
    }
    // P(µW) = E(fJ) · 1e-15 / (cycles / f) · 1e6 = E·f/cycles · 1e-9.
    let scale = cfg.freq_hz / act.cycles as f64 * 1e-9;
    let switching_uw = switching_fj * scale;
    let clock_uw = clock_fj * scale;
    PowerReport {
        total_uw: switching_uw + clock_uw,
        switching_uw,
        clock_uw,
        cycles: act.cycles,
    }
}

/// Converts bit-parallel per-lane [`LaneActivity`] into one
/// [`PowerReport`] per simulation lane, restricted to the sub-circuit
/// whose driver gates satisfy `include` (same accounting as
/// [`power_from_activity_where`]).
///
/// Lane 0 of a [`sfr_netlist::ParallelFaultSim`] is the fault-free
/// circuit, so `reports[0]` is the baseline and `reports[1 + i]` is the
/// power under fault `i` — each bit-identical to what a scalar
/// simulation of that lane would have produced, because every lane's
/// extracted [`Activity`] is exact.
pub fn power_from_lane_activity_where(
    nl: &Netlist,
    act: &LaneActivity,
    cfg: &PowerConfig,
    include: impl Fn(sfr_netlist::GateId) -> bool,
) -> Vec<PowerReport> {
    (0..act.lanes())
        .map(|lane| power_from_activity_where(nl, &act.lane(lane), cfg, &include))
        .collect()
}

/// Converts a compiled-tape kernel's per-lane [`TapeActivity`] into one
/// [`PowerReport`] per lane, restricted to the sub-circuit whose driver
/// gates satisfy `include`.
///
/// Bit-identical to extracting each lane's [`Activity`] and calling
/// [`power_from_activity_where`] on it, but one pass over the tape's
/// sparse delta counters instead of `lanes` full extractions: per
/// column the energy coefficient is computed once and every lane's
/// accumulator receives its terms in the same order, with the same
/// multiplications, as the per-lane reference — excluded or quiet
/// columns contribute an exact `+0.0`, which leaves an IEEE-754 sum
/// unchanged.
pub fn power_from_tape_activity_where<W: TapeWord>(
    nl: &Netlist,
    act: &TapeActivity<W>,
    cfg: &PowerConfig,
    include: impl Fn(sfr_netlist::GateId) -> bool,
) -> Vec<PowerReport> {
    let lanes = act.lanes();
    if act.cycles() == 0 {
        return vec![PowerReport::default(); lanes];
    }
    let net_e: Vec<f64> = nl
        .net_ids()
        .map(|net| match nl.driver(net) {
            Some(driver) if include(driver) => cfg.swing_energy_fj(nl.net_cap_ff(net)),
            _ => 0.0,
        })
        .collect();
    // Clock coefficients indexed by gate; combinational gates keep 0.0
    // and report zero events, and `sequential_gates()` is ascending, so
    // the index-order stream below adds each lane's nonzero clock terms
    // in exactly the reference iteration order.
    let mut clk_e = vec![0.0f64; nl.gate_count()];
    for &g in nl.sequential_gates() {
        if include(g) {
            clk_e[g.index()] = cfg.swing_energy_fj(nl.gate(g).kind().clock_cap_ff());
        }
    }
    let mut switching_fj = vec![0.0f64; lanes];
    let mut clock_fj = vec![0.0f64; lanes];
    let accumulate = |acc: &mut [f64], e: f64, counts: LaneCounts<'_>| {
        if e == 0.0 {
            return; // every lane's term is an exact +0.0
        }
        match counts {
            LaneCounts::Uniform(c) => {
                if c != 0 {
                    let term = c as f64 * e;
                    for a in acc.iter_mut() {
                        *a += term;
                    }
                }
            }
            LaneCounts::PerLane(counts) => {
                for (a, &c) in acc.iter_mut().zip(counts) {
                    *a += c as f64 * e;
                }
            }
        }
    };
    act.for_each_net_count(|net, counts| accumulate(&mut switching_fj, net_e[net], counts));
    act.for_each_clock_count(|gate, counts| accumulate(&mut clock_fj, clk_e[gate], counts));
    let scale = cfg.freq_hz / act.cycles() as f64 * 1e-9;
    switching_fj
        .iter()
        .zip(&clock_fj)
        .map(|(&s, &c)| {
            let switching_uw = s * scale;
            let clock_uw = c * scale;
            PowerReport {
                total_uw: switching_uw + clock_uw,
                switching_uw,
                clock_uw,
                cycles: act.cycles(),
            }
        })
        .collect()
}

/// Converts activity recorded in separately simulated parts (e.g. one
/// [`Activity`] per stimulus segment) into one combined power estimate,
/// merging the parts with [`Activity::merge`].
///
/// Returns a zero report for an empty part list.
///
/// # Errors
///
/// Propagates [`ActivityMismatch`] when the parts were recorded on
/// differently-shaped netlists and therefore cannot be combined.
pub fn power_from_activity_parts<'a>(
    nl: &Netlist,
    parts: impl IntoIterator<Item = &'a Activity>,
    cfg: &PowerConfig,
    include: impl Fn(sfr_netlist::GateId) -> bool,
) -> Result<PowerReport, ActivityMismatch> {
    let mut parts = parts.into_iter();
    let Some(first) = parts.next() else {
        return Ok(PowerReport::default());
    };
    let mut total = first.clone();
    for part in parts {
        total.merge(part)?;
    }
    Ok(power_from_activity_where(nl, &total, cfg, include))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfr_netlist::{CellKind, CycleSim, Logic, NetlistBuilder};

    fn toggler() -> sfr_netlist::Netlist {
        let mut b = NetlistBuilder::new("t");
        let d = b.input("d");
        let en = b.input("en");
        let q = b.net("q");
        b.gate(CellKind::Dffe, "r", &[d, en], q);
        let o = b.gate_net(CellKind::Inv, "i", &[q]);
        b.mark_output(o);
        b.finish().unwrap()
    }

    #[test]
    fn zero_cycles_zero_power() {
        let nl = toggler();
        let act = Activity::default();
        let p = power_from_activity(
            &nl,
            &Activity {
                net_toggles: vec![0; nl.net_count()],
                clock_events: vec![0; nl.gate_count()],
                cycles: 0,
            },
            &PowerConfig::default(),
        );
        assert_eq!(p.total_uw, 0.0);
        let _ = act;
    }

    #[test]
    fn extra_register_loads_increase_power() {
        let nl = toggler();
        let cfg = PowerConfig::default();
        // Scenario A: load once, then idle (gated clock quiet).
        let mut a = CycleSim::new(&nl);
        a.track_activity(true);
        a.reset_state(Logic::Zero);
        a.step(&[Logic::One, Logic::One]);
        for _ in 0..9 {
            a.step(&[Logic::One, Logic::Zero]);
        }
        let pa = power_from_activity(&nl, a.activity(), &cfg);
        // Scenario B: identical data, but the enable is stuck high — the
        // register reloads the same value every cycle.
        let mut bsim = CycleSim::new(&nl);
        bsim.track_activity(true);
        bsim.reset_state(Logic::Zero);
        for _ in 0..10 {
            bsim.step(&[Logic::One, Logic::One]);
        }
        let pb = power_from_activity(&nl, bsim.activity(), &cfg);
        assert!(
            pb.total_uw > pa.total_uw,
            "extra loads must cost clock energy: {pa:?} vs {pb:?}"
        );
        assert!(pb.clock_uw > pa.clock_uw);
    }

    #[test]
    fn power_scales_with_frequency() {
        let nl = toggler();
        let mut sim = CycleSim::new(&nl);
        sim.track_activity(true);
        sim.reset_state(Logic::Zero);
        for i in 0..20 {
            sim.step(&[Logic::from_bool(i % 2 == 0), Logic::One]);
        }
        let slow = power_from_activity(
            &nl,
            sim.activity(),
            &PowerConfig {
                freq_hz: 10e6,
                ..Default::default()
            },
        );
        let fast = power_from_activity(
            &nl,
            sim.activity(),
            &PowerConfig {
                freq_hz: 20e6,
                ..Default::default()
            },
        );
        assert!((fast.total_uw / slow.total_uw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn percent_change() {
        let a = PowerReport {
            total_uw: 200.0,
            ..Default::default()
        };
        let b = PowerReport {
            total_uw: 150.0,
            ..Default::default()
        };
        assert!((b.percent_change_from(&a) + 25.0).abs() < 1e-9);
    }

    #[test]
    fn lane_power_matches_scalar_power() {
        use sfr_netlist::{ParallelFaultSim, StuckAt};
        let nl = toggler();
        let cfg = PowerConfig::default();
        let faults = StuckAt::enumerate_collapsed(&nl);
        let mut psim = ParallelFaultSim::new(&nl, &faults).unwrap();
        psim.track_activity(true);
        psim.reset_state(Logic::Zero);
        let stim = [
            [Logic::One, Logic::One],
            [Logic::Zero, Logic::Zero],
            [Logic::One, Logic::Zero],
            [Logic::Zero, Logic::One],
        ];
        let mut scalars: Vec<CycleSim> = std::iter::once(CycleSim::new(&nl))
            .chain(faults.iter().map(|&f| CycleSim::with_fault(&nl, f)))
            .map(|mut s| {
                s.track_activity(true);
                s.reset_state(Logic::Zero);
                s
            })
            .collect();
        for inputs in stim {
            psim.set_inputs(&inputs);
            psim.eval();
            psim.clock();
            for s in scalars.iter_mut() {
                s.step(&inputs);
            }
        }
        let reports =
            power_from_lane_activity_where(&nl, psim.activity().expect("tracking"), &cfg, |_| true);
        assert_eq!(reports.len(), faults.len() + 1);
        for (lane, s) in scalars.iter().enumerate() {
            let want = power_from_activity(&nl, s.activity(), &cfg);
            assert_eq!(reports[lane], want, "lane {lane}");
        }
    }

    #[test]
    fn activity_parts_power_equals_whole() {
        let nl = toggler();
        let cfg = PowerConfig::default();
        let run = |stim: &[[Logic; 2]]| {
            let mut s = CycleSim::new(&nl);
            s.track_activity(true);
            s.reset_state(Logic::Zero);
            for inputs in stim {
                s.step(inputs);
            }
            s.take_activity()
        };
        let a = run(&[[Logic::One, Logic::One], [Logic::Zero, Logic::One]]);
        let b = run(&[[Logic::One, Logic::Zero], [Logic::One, Logic::One]]);
        let combined =
            power_from_activity_parts(&nl, [&a, &b], &cfg, |_| true).expect("same netlist");
        let mut whole = a.clone();
        whole.merge(&b).unwrap();
        assert_eq!(combined, power_from_activity(&nl, &whole, &cfg));
        // Empty part list: zero power, no error.
        let empty = power_from_activity_parts(&nl, [], &cfg, |_| true).unwrap();
        assert_eq!(empty.total_uw, 0.0);
    }

    #[test]
    fn activity_parts_reject_shape_mismatch() {
        let nl = toggler();
        let cfg = PowerConfig::default();
        let mut s = CycleSim::new(&nl);
        s.track_activity(true);
        s.reset_state(Logic::Zero);
        s.step(&[Logic::One, Logic::One]);
        let a = s.take_activity();
        let mut b2 = NetlistBuilder::new("tiny");
        let d = b2.input("d");
        let o = b2.gate_net(CellKind::Inv, "i", &[d]);
        b2.mark_output(o);
        let other = b2.finish().unwrap();
        let mut s2 = CycleSim::new(&other);
        s2.track_activity(true);
        s2.step(&[Logic::One]);
        let b = s2.take_activity();
        let err = power_from_activity_parts(&nl, [&a, &b], &cfg, |_| true).unwrap_err();
        assert!(err.to_string().contains("cannot merge"));
    }

    #[test]
    fn swing_energy_quadratic_in_vdd() {
        let c5 = PowerConfig {
            vdd: 5.0,
            freq_hz: 1.0,
        };
        let c25 = PowerConfig {
            vdd: 2.5,
            freq_hz: 1.0,
        };
        assert!((c5.swing_energy_fj(10.0) / c25.swing_energy_fj(10.0) - 4.0).abs() < 1e-9);
    }
}
