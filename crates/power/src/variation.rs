//! Process/environment variation and the tolerance-band trade-off.
//!
//! The paper's second practical difficulty (Section 5): "the threshold
//! must be chosen large enough to accommodate normal variations in a
//! core's power consumption, due to process variations when the chip was
//! fabricated, environmental variations, et cetera. The smaller the
//! threshold can be made in practice, the greater is the percentage of
//! SFR faults that can be detected."
//!
//! This module models a fabricated population: each virtual chip scales
//! every switched capacitance by a lognormal process factor and its
//! supply by a small Gaussian deviation. Sampling the population's
//! fault-free power yields the spread a tester must tolerate — and
//! therefore the smallest usable detection band.

use crate::energy::{PowerConfig, PowerReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simple chip-to-chip variation model.
///
/// Power scales multiplicatively: `P_chip = P_nominal · k_c · (v/V)²`
/// where `k_c` is a per-chip capacitance/activity factor (lognormal
/// around 1) and `v` a per-chip supply (Gaussian around nominal).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariationModel {
    /// Standard deviation of `ln(k_c)` (e.g. `0.02` ≈ 2% sigma).
    pub cap_sigma: f64,
    /// Relative standard deviation of the supply voltage.
    pub vdd_rel_sigma: f64,
}

impl Default for VariationModel {
    fn default() -> Self {
        VariationModel {
            cap_sigma: 0.010,
            vdd_rel_sigma: 0.005,
        }
    }
}

/// The sampled fault-free power population of one design.
#[derive(Debug, Clone)]
pub struct PowerPopulation {
    samples: Vec<f64>,
    nominal_uw: f64,
}

impl VariationModel {
    /// Samples `n` virtual chips around a nominal power figure.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn sample_population(
        &self,
        nominal: &PowerReport,
        cfg: &PowerConfig,
        n: usize,
        seed: u64,
    ) -> PowerPopulation {
        assert!(n >= 2, "a population needs at least two chips");
        let mut rng = StdRng::seed_from_u64(seed);
        let samples = (0..n)
            .map(|_| {
                let k_c = (gaussian(&mut rng) * self.cap_sigma).exp();
                let v = cfg.vdd * (1.0 + gaussian(&mut rng) * self.vdd_rel_sigma);
                nominal.total_uw * k_c * (v / cfg.vdd).powi(2)
            })
            .collect();
        PowerPopulation {
            samples,
            nominal_uw: nominal.total_uw,
        }
    }
}

/// Standard normal via Box–Muller.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

impl PowerPopulation {
    /// The sampled per-chip powers, µW.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// The nominal (golden-simulation) power, µW.
    pub fn nominal_uw(&self) -> f64 {
        self.nominal_uw
    }

    /// The maximum absolute percentage deviation of any sampled chip
    /// from nominal — the band a tester must at least tolerate to avoid
    /// failing good parts.
    pub fn worst_deviation_pct(&self) -> f64 {
        self.samples
            .iter()
            .map(|&s| (100.0 * (s - self.nominal_uw) / self.nominal_uw).abs())
            .fold(0.0, f64::max)
    }

    /// The smallest symmetric band (percent) that keeps the given
    /// fraction of good chips inside — e.g. `0.999` for a 0.1% yield
    /// loss budget.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < keep_fraction <= 1.0`.
    pub fn band_for_yield(&self, keep_fraction: f64) -> f64 {
        assert!(
            keep_fraction > 0.0 && keep_fraction <= 1.0,
            "keep_fraction must be in (0, 1]"
        );
        let mut devs: Vec<f64> = self
            .samples
            .iter()
            .map(|&s| (100.0 * (s - self.nominal_uw) / self.nominal_uw).abs())
            .collect();
        devs.sort_by(f64::total_cmp);
        let idx = ((devs.len() as f64 * keep_fraction).ceil() as usize).clamp(1, devs.len());
        devs[idx - 1]
    }

    /// The fraction of chips a band of `band_pct` percent would falsely
    /// reject.
    pub fn false_reject_rate(&self, band_pct: f64) -> f64 {
        let rejected = self
            .samples
            .iter()
            .filter(|&&s| (100.0 * (s - self.nominal_uw) / self.nominal_uw).abs() > band_pct)
            .count();
        rejected as f64 / self.samples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal() -> PowerReport {
        PowerReport {
            total_uw: 1000.0,
            switching_uw: 800.0,
            clock_uw: 200.0,
            cycles: 1200,
        }
    }

    #[test]
    fn population_centers_on_nominal() {
        let pop = VariationModel::default().sample_population(
            &nominal(),
            &PowerConfig::default(),
            4000,
            7,
        );
        let mean: f64 = pop.samples().iter().sum::<f64>() / pop.samples().len() as f64;
        assert!((mean - 1000.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn bands_grow_with_yield_requirements() {
        let pop = VariationModel::default().sample_population(
            &nominal(),
            &PowerConfig::default(),
            4000,
            7,
        );
        let b90 = pop.band_for_yield(0.90);
        let b99 = pop.band_for_yield(0.99);
        let b999 = pop.band_for_yield(0.999);
        assert!(b90 < b99);
        assert!(b99 < b999);
        assert!(b999 <= pop.worst_deviation_pct());
        // With ~1% cap sigma and 0.5% vdd sigma (≈1.4% combined power
        // sigma), the paper's 5% band sits at ~3.5σ and keeps
        // essentially every good chip.
        assert!(pop.false_reject_rate(5.0) < 0.005);
        // A 1% band would fail a large share of good parts.
        assert!(pop.false_reject_rate(1.0) > 0.2);
    }

    #[test]
    fn zero_variation_population_is_tight() {
        let model = VariationModel {
            cap_sigma: 0.0,
            vdd_rel_sigma: 0.0,
        };
        let pop = model.sample_population(&nominal(), &PowerConfig::default(), 100, 1);
        assert!(pop.worst_deviation_pct() < 1e-9);
        assert_eq!(pop.false_reject_rate(0.1), 0.0);
    }

    #[test]
    fn sampling_is_deterministic_in_the_seed() {
        let m = VariationModel::default();
        let a = m.sample_population(&nominal(), &PowerConfig::default(), 50, 42);
        let b = m.sample_population(&nominal(), &PowerConfig::default(), 50, 42);
        assert_eq!(a.samples(), b.samples());
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn rejects_tiny_populations() {
        let _ =
            VariationModel::default().sample_population(&nominal(), &PowerConfig::default(), 1, 1);
    }
}
