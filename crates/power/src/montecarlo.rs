//! Monte Carlo power estimation with convergence control.
//!
//! "To get an idea of the average power consumption over a wide range of
//! test sets, a Monte Carlo simulation can be used; the faulty circuit is
//! simulated for random data until the power converges." (paper,
//! Section 5). Batches of random runs produce per-batch power samples;
//! estimation stops when the 95% confidence half-width falls below a
//! relative tolerance.

use crate::energy::PowerReport;
use sfr_exec::par_map_indexed;

/// Convergence settings for [`run_monte_carlo`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloConfig {
    /// Target relative half-width of the 95% confidence interval.
    pub rel_tolerance: f64,
    /// Minimum number of batches before convergence may be declared.
    pub min_batches: usize,
    /// Hard ceiling on batches.
    pub max_batches: usize,
}

impl Default for MonteCarloConfig {
    fn default() -> Self {
        MonteCarloConfig {
            rel_tolerance: 0.01,
            min_batches: 8,
            max_batches: 200,
        }
    }
}

/// Result of a Monte Carlo power estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MonteCarloResult {
    /// Mean power across batches, µW.
    pub mean_uw: f64,
    /// Half-width of the 95% confidence interval, µW.
    pub half_width_uw: f64,
    /// Batches actually run.
    pub batches: usize,
    /// Whether the tolerance was met (false = stopped at `max_batches`).
    pub converged: bool,
}

impl MonteCarloResult {
    /// Relative half-width (half-width / mean).
    pub fn rel_half_width(&self) -> f64 {
        if self.mean_uw == 0.0 {
            0.0
        } else {
            self.half_width_uw / self.mean_uw
        }
    }
}

/// Runs `batch(i)` — which must simulate one batch of random runs and
/// return its average power — until the mean converges.
///
/// # Panics
///
/// Panics if `cfg.min_batches < 2` or `max_batches < min_batches`.
pub fn run_monte_carlo<F>(cfg: &MonteCarloConfig, mut batch: F) -> MonteCarloResult
where
    F: FnMut(usize) -> PowerReport,
{
    assert!(cfg.min_batches >= 2, "need at least 2 batches for a CI");
    assert!(cfg.max_batches >= cfg.min_batches);
    let mut samples: Vec<f64> = Vec::new();
    loop {
        let i = samples.len();
        samples.push(batch(i).total_uw);
        if samples.len() >= cfg.min_batches {
            let n = samples.len() as f64;
            let mean = samples.iter().sum::<f64>() / n;
            let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
            let half = 1.96 * (var / n).sqrt();
            let rel = if mean == 0.0 { 0.0 } else { half / mean };
            if rel <= cfg.rel_tolerance {
                return MonteCarloResult {
                    mean_uw: mean,
                    half_width_uw: half,
                    batches: samples.len(),
                    converged: true,
                };
            }
            if samples.len() >= cfg.max_batches {
                return MonteCarloResult {
                    mean_uw: mean,
                    half_width_uw: half,
                    batches: samples.len(),
                    converged: false,
                };
            }
        }
    }
}

/// 95% CI statistics over a sample prefix, summed in index order —
/// the exact arithmetic of the serial loop.
fn prefix_stats(samples: &[f64]) -> (f64, f64, f64) {
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (n - 1.0);
    let half = 1.96 * (var / n).sqrt();
    let rel = if mean == 0.0 { 0.0 } else { half / mean };
    (mean, half, rel)
}

/// Parallel [`run_monte_carlo`]: byte-identical result, batches
/// evaluated on up to `threads` worker threads.
///
/// `batch(i)` must be a pure function of the batch index `i` (in
/// practice: seed the batch's RNG from `i`, never from shared state).
/// Batches are evaluated speculatively in waves; after each wave the
/// serial stopping rule is replayed over sample *prefixes* in index
/// order, and the result is truncated to exactly the prefix the serial
/// loop would have stopped at. Speculated batches beyond that point are
/// discarded, so means, half-widths, and batch counts match
/// [`run_monte_carlo`] bit for bit at any thread count.
///
/// # Panics
///
/// Panics if `cfg.min_batches < 2` or `max_batches < min_batches`.
pub fn run_monte_carlo_par<F>(cfg: &MonteCarloConfig, threads: usize, batch: F) -> MonteCarloResult
where
    F: Fn(usize) -> PowerReport + Sync,
{
    assert!(cfg.min_batches >= 2, "need at least 2 batches for a CI");
    assert!(cfg.max_batches >= cfg.min_batches);
    if threads <= 1 {
        return run_monte_carlo(cfg, batch);
    }
    let mut samples: Vec<f64> = Vec::new();
    loop {
        // The serial loop always reaches `min_batches`; past that,
        // speculate one batch per worker (capped at the ceiling).
        let target = if samples.len() < cfg.min_batches {
            cfg.min_batches
        } else {
            (samples.len() + threads).min(cfg.max_batches)
        };
        let start = samples.len();
        samples.extend(par_map_indexed(threads, target - start, |j| {
            batch(start + j).total_uw
        }));
        // Replay the serial stopping rule over the new prefixes.
        for n in start.max(cfg.min_batches)..=samples.len() {
            let (mean, half, rel) = prefix_stats(&samples[..n]);
            if rel <= cfg.rel_tolerance {
                return MonteCarloResult {
                    mean_uw: mean,
                    half_width_uw: half,
                    batches: n,
                    converged: true,
                };
            }
            if n >= cfg.max_batches {
                return MonteCarloResult {
                    mean_uw: mean,
                    half_width_uw: half,
                    batches: n,
                    converged: false,
                };
            }
        }
    }
}

/// Runs one Monte Carlo estimation per simulation lane off a shared
/// batch stream: `batch(i)` must simulate batch `i` once for **all**
/// `lanes` lanes (e.g. one 63-fault [`sfr_netlist::ParallelFaultSim`]
/// pass) and return one [`PowerReport`] per lane.
///
/// Each lane's stopping rule is the serial [`run_monte_carlo`] rule
/// replayed over that lane's own sample prefix, so lane `l`'s
/// [`MonteCarloResult`] is bit-identical to
/// `run_monte_carlo(cfg, |i| scalar_batch_for_lane_l(i))` — same mean,
/// half-width, batch count, and convergence flag — even though all lanes
/// share the simulation passes. Batches keep running until the slowest
/// lane stops; samples past a lane's own stopping point are discarded,
/// exactly as the serial loop would never have computed them.
///
/// # Panics
///
/// Panics if `cfg.min_batches < 2`, `max_batches < min_batches`, or
/// `batch` returns a report count other than `lanes`.
pub fn run_monte_carlo_lanes<F>(
    cfg: &MonteCarloConfig,
    lanes: usize,
    mut batch: F,
) -> Vec<MonteCarloResult>
where
    F: FnMut(usize) -> Vec<PowerReport>,
{
    assert!(cfg.min_batches >= 2, "need at least 2 batches for a CI");
    assert!(cfg.max_batches >= cfg.min_batches);
    let mut samples: Vec<Vec<f64>> = vec![Vec::new(); lanes];
    let mut results: Vec<Option<MonteCarloResult>> = vec![None; lanes];
    let mut open = lanes;
    let mut i = 0;
    while open > 0 {
        let reports = batch(i);
        assert_eq!(reports.len(), lanes, "batch must report every lane");
        for (l, rep) in reports.iter().enumerate() {
            if results[l].is_some() {
                continue;
            }
            samples[l].push(rep.total_uw);
            if samples[l].len() < cfg.min_batches {
                continue;
            }
            let (mean, half, rel) = prefix_stats(&samples[l]);
            let converged = rel <= cfg.rel_tolerance;
            if converged || samples[l].len() >= cfg.max_batches {
                results[l] = Some(MonteCarloResult {
                    mean_uw: mean,
                    half_width_uw: half,
                    batches: samples[l].len(),
                    converged,
                });
                open -= 1;
            }
        }
        i += 1;
    }
    results
        .into_iter()
        .map(|r| r.expect("lane closed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(uw: f64) -> PowerReport {
        PowerReport {
            total_uw: uw,
            switching_uw: uw,
            clock_uw: 0.0,
            cycles: 100,
        }
    }

    #[test]
    fn constant_sequence_converges_immediately() {
        let r = run_monte_carlo(&MonteCarloConfig::default(), |_| report(42.0));
        assert!(r.converged);
        assert_eq!(r.batches, 8);
        assert!((r.mean_uw - 42.0).abs() < 1e-12);
        assert!(r.half_width_uw < 1e-12);
    }

    #[test]
    fn noisy_sequence_takes_more_batches() {
        // Deterministic pseudo-noise around 100.
        let mut s = 12345u64;
        let cfg = MonteCarloConfig {
            rel_tolerance: 0.005,
            min_batches: 4,
            max_batches: 10_000,
        };
        let r = run_monte_carlo(&cfg, |_| {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            report(100.0 + (s % 21) as f64 - 10.0)
        });
        assert!(r.converged);
        assert!(r.batches > 4);
        assert!((r.mean_uw - 100.0).abs() < 2.0);
        assert!(r.rel_half_width() <= 0.005);
    }

    #[test]
    fn max_batches_caps_divergent_input() {
        let mut i = 0.0;
        let cfg = MonteCarloConfig {
            rel_tolerance: 1e-9,
            min_batches: 2,
            max_batches: 5,
        };
        let r = run_monte_carlo(&cfg, |_| {
            i += 100.0;
            report(i)
        });
        assert!(!r.converged);
        assert_eq!(r.batches, 5);
    }

    /// A deterministic pure-function-of-index batch: pseudo-noise
    /// around `center`.
    fn hashed_batch(center: f64) -> impl Fn(usize) -> PowerReport + Sync {
        move |i: usize| {
            let mut z = (i as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            report(center + (z % 21) as f64 - 10.0)
        }
    }

    #[test]
    fn parallel_is_bit_identical_to_serial() {
        for tol in [0.05, 0.01, 0.004] {
            let cfg = MonteCarloConfig {
                rel_tolerance: tol,
                min_batches: 4,
                max_batches: 5000,
            };
            let serial = run_monte_carlo(&cfg, hashed_batch(100.0));
            for threads in [1, 2, 3, 8] {
                let par = run_monte_carlo_par(&cfg, threads, hashed_batch(100.0));
                assert_eq!(serial, par, "tol {tol}, threads {threads}");
            }
        }
    }

    #[test]
    fn parallel_capped_case_matches_serial() {
        let cfg = MonteCarloConfig {
            rel_tolerance: 1e-12,
            min_batches: 2,
            max_batches: 7,
        };
        let serial = run_monte_carlo(&cfg, hashed_batch(50.0));
        assert!(!serial.converged);
        for threads in [2, 5] {
            let par = run_monte_carlo_par(&cfg, threads, hashed_batch(50.0));
            assert_eq!(serial, par, "threads {threads}");
        }
    }

    /// Deterministic per-lane pseudo-noise: value of lane `l`, batch `i`.
    fn lane_sample(l: usize, i: usize) -> f64 {
        let mut z = (l as u64)
            .wrapping_mul(0xD129_0912_8092_1097)
            .wrapping_add(i as u64)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        // Lanes get different spreads so they converge at different
        // batch counts.
        100.0 + (l as f64 + 1.0) * ((z % 21) as f64 - 10.0) / 10.0
    }

    #[test]
    fn lanes_are_bit_identical_to_per_lane_serial() {
        let cfg = MonteCarloConfig {
            rel_tolerance: 0.004,
            min_batches: 4,
            max_batches: 300,
        };
        let lanes = 9;
        let joint = run_monte_carlo_lanes(&cfg, lanes, |i| {
            (0..lanes).map(|l| report(lane_sample(l, i))).collect()
        });
        assert_eq!(joint.len(), lanes);
        let mut batch_counts: Vec<usize> = Vec::new();
        for (l, got) in joint.iter().enumerate() {
            let want = run_monte_carlo(&cfg, |i| report(lane_sample(l, i)));
            assert_eq!(*got, want, "lane {l}");
            batch_counts.push(want.batches);
        }
        // The test is only meaningful if lanes genuinely stop at
        // different points.
        batch_counts.dedup();
        assert!(batch_counts.len() > 1, "lanes all stopped together");
    }

    #[test]
    fn lanes_capped_case_matches_serial() {
        let cfg = MonteCarloConfig {
            rel_tolerance: 1e-12,
            min_batches: 2,
            max_batches: 6,
        };
        let joint = run_monte_carlo_lanes(&cfg, 3, |i| {
            (0..3).map(|l| report(lane_sample(l, i))).collect()
        });
        for (l, got) in joint.iter().enumerate() {
            let want = run_monte_carlo(&cfg, |i| report(lane_sample(l, i)));
            assert_eq!(*got, want, "lane {l}");
            assert!(!got.converged);
            assert_eq!(got.batches, 6);
        }
    }

    #[test]
    fn zero_lanes_returns_empty() {
        let r = run_monte_carlo_lanes(&MonteCarloConfig::default(), 0, |_| {
            panic!("no batch should run")
        });
        assert!(r.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn rejects_single_batch_minimum() {
        let cfg = MonteCarloConfig {
            min_batches: 1,
            ..Default::default()
        };
        let _ = run_monte_carlo(&cfg, |_| report(1.0));
    }
}
