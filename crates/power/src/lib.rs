//! Toggle-count dynamic power estimation.
//!
//! The paper's detection mechanism is analog: system-functionally
//! redundant controller faults change the datapath's *dynamic power*.
//! This crate converts the switching [`sfr_netlist::Activity`] recorded by
//! gate-level simulation into average power (`P = ½·Vdd²·f·ΣCᵢαᵢ`,
//! [`power_from_activity`]) and provides the Monte Carlo loop
//! ([`run_monte_carlo`]) the paper uses to average power over random data
//! until convergence.
//!
//! Two energy terms are tracked separately:
//!
//! * **switching** — net toggles weighted by each net's switched
//!   capacitance (driver diffusion + fanout gate pins + wire estimate);
//! * **clock** — internal clock energy of sequential cells. Gated
//!   registers ([`sfr_netlist::CellKind::Dffe`]) only pay this when
//!   enabled, which is exactly the energy an SFR extra-load fault un-gates.
//!
//! # Example
//!
//! ```
//! use sfr_netlist::{CellKind, CycleSim, Logic, NetlistBuilder};
//! use sfr_power_model::{power_from_activity, PowerConfig};
//!
//! # fn main() -> Result<(), sfr_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new("bit");
//! let d = b.input("d");
//! let en = b.input("en");
//! let q = b.net("q");
//! b.gate(CellKind::Dffe, "r", &[d, en], q);
//! b.mark_output(q);
//! let nl = b.finish()?;
//!
//! let mut sim = CycleSim::new(&nl);
//! sim.track_activity(true);
//! sim.reset_state(Logic::Zero);
//! for i in 0..100 {
//!     sim.step(&[Logic::from_bool(i % 2 == 0), Logic::One]);
//! }
//! let p = power_from_activity(&nl, sim.activity(), &PowerConfig::default());
//! assert!(p.total_uw > 0.0);
//! assert!(p.clock_uw > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod energy;
mod montecarlo;
mod variation;

pub use energy::{
    power_from_activity, power_from_activity_parts, power_from_activity_where,
    power_from_lane_activity_where, power_from_tape_activity_where, PowerConfig, PowerReport,
};
pub use montecarlo::{
    run_monte_carlo, run_monte_carlo_lanes, run_monte_carlo_par, MonteCarloConfig, MonteCarloResult,
};
pub use variation::{PowerPopulation, VariationModel};
