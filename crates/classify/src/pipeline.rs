//! The paper's four-step classification methodology (Section 5).
//!
//! 1. Integrated fault simulation with TPGR data: detected faults are
//!    SFI.
//! 2. "Potentially detected" verdicts (an `X` reaching an output whose
//!    fault-free value is known) are resolved to detected — the real
//!    circuit holds *some* boot value, and over a long test it will
//!    mismatch (the paper's output-register load-stuck-at-0 argument).
//! 3. Exhaustive controller-table analysis separates CFR faults (no
//!    output or next-state change anywhere reachable).
//! 4. The remaining faults' control line effects are analyzed: the
//!    Section 3 structural rules decide the clear cases, and the
//!    symbolic input-output [oracle](crate::judge) decides the
//!    data-dependent ones — yielding the final SFR/SFI split.

use std::collections::HashMap;

use crate::oracle::{judge, Mismatch, Verdict};
use crate::rules::{judge_by_rules, RuleVerdict};
use crate::table::{analyze_controller_fault, ControlLineEffect};
use sfr_exec::{NullProgress, Phase, PhaseTimer, Progress, ProgressEvent, TraceRecord};
use sfr_faultsim::{
    golden_trace, run_campaign_quarantined, Detection, Engine, LaneEngine, QuarantinedChunk,
    RunConfig, SerialEngine, System,
};
use sfr_journal::CampaignJournal;
use sfr_netlist::{FaultClasses, StuckAt};
use sfr_tpg::TestSet;

/// Why a fault was classified SFI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfiReason {
    /// Detected by integrated fault simulation (step 1).
    Simulation {
        /// First detecting cycle.
        cycle: usize,
    },
    /// "Potentially detected" resolved to detected (step 2).
    PotentialResolved {
        /// First ambiguous cycle.
        cycle: usize,
    },
    /// The fault changes the controller's state sequencing on some
    /// reachable (state, status) pair.
    SequenceAltering,
    /// The symbolic oracle found an observable structural difference.
    Oracle(Mismatch),
}

/// The final class of a controller fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Controller-functionally redundant: no effect on the controller's
    /// behaviour at all.
    Cfr,
    /// System-functionally redundant: changes control lines but never
    /// the pair's I/O behaviour — the paper's power-detectable class.
    Sfr,
    /// System-functionally irredundant.
    Sfi(SfiReason),
}

impl FaultClass {
    /// Whether the fault is SFR.
    pub fn is_sfr(self) -> bool {
        matches!(self, FaultClass::Sfr)
    }
}

/// One classified fault with its analysis artifacts.
#[derive(Debug, Clone)]
pub struct ClassifiedFault {
    /// The fault (system-netlist coordinates).
    pub fault: StuckAt,
    /// Its class.
    pub class: FaultClass,
    /// The fault's control line effects (populated for faults that
    /// reached table analysis; empty for simulation-detected faults).
    pub effects: Vec<ControlLineEffect>,
    /// The Section 3 rule engine's verdict, where computed.
    pub rule_verdict: Option<RuleVerdict>,
}

/// Classification settings.
#[derive(Debug, Clone)]
pub struct ClassifyConfig {
    /// TPGR seed for the detection fault simulation.
    pub test_seed: u32,
    /// Number of TPGR patterns for detection.
    pub test_patterns: usize,
    /// Run shaping.
    pub run: RunConfig,
    /// Use the bit-parallel engine (identical results, faster).
    pub parallel: bool,
    /// Run the static-analysis pre-pass: faults whose class is provable
    /// without simulation (statically CFR, or table-CFR/SFR with an
    /// oracle-redundant effect bundle) are classified up front and
    /// pruned from the fault-simulation campaign. The resulting
    /// [`Classification`] is bit-identical to the unpruned one.
    pub static_prune: bool,
}

impl Default for ClassifyConfig {
    fn default() -> Self {
        ClassifyConfig {
            test_seed: 0xACE1,
            test_patterns: 1200,
            run: RunConfig::default(),
            parallel: true,
            static_prune: false,
        }
    }
}

/// A complete classification of a system's controller fault universe.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Per-fault results, in fault-universe order.
    pub faults: Vec<ClassifiedFault>,
}

impl Classification {
    /// Total number of controller faults.
    pub fn total(&self) -> usize {
        self.faults.len()
    }

    /// The SFR faults.
    pub fn sfr(&self) -> impl Iterator<Item = &ClassifiedFault> {
        self.faults.iter().filter(|f| f.class.is_sfr())
    }

    /// Number of SFR faults.
    pub fn sfr_count(&self) -> usize {
        self.sfr().count()
    }

    /// Number of CFR faults.
    pub fn cfr_count(&self) -> usize {
        self.faults
            .iter()
            .filter(|f| f.class == FaultClass::Cfr)
            .count()
    }

    /// Number of SFI faults.
    pub fn sfi_count(&self) -> usize {
        self.total() - self.sfr_count() - self.cfr_count()
    }

    /// Percentage of faults that are SFR (the paper's Table 2 column).
    pub fn percent_sfr(&self) -> f64 {
        100.0 * self.sfr_count() as f64 / self.total() as f64
    }
}

/// Runs the full methodology over a system's controller fault universe
/// with the default engine selection from `cfg.parallel` and no
/// observer. See [`classify_system_with`] for the engine- and
/// progress-aware entry point.
pub fn classify_system(sys: &System, cfg: &ClassifyConfig) -> Classification {
    let engine: &dyn Engine = if cfg.parallel {
        &LaneEngine
    } else {
        &SerialEngine
    };
    classify_system_with(sys, cfg, engine, &NullProgress)
}

/// Runs the full methodology on an explicit fault-simulation [`Engine`],
/// reporting phase timings and per-fault events to `progress`.
///
/// All engines yield identical classifications (the campaign verdicts
/// are engine-invariant and every later step is deterministic).
pub fn classify_system_with(
    sys: &System,
    cfg: &ClassifyConfig,
    engine: &dyn Engine,
    progress: &dyn Progress,
) -> Classification {
    classify_system_journaled(sys, cfg, engine, progress, None).0
}

/// [`classify_system_with`] plus campaign resilience: fault-simulation
/// chunks run under panic quarantine and, when `journal` is given,
/// completed chunks are checkpointed and previously-journaled chunks
/// restored verbatim (see
/// [`run_campaign_quarantined`]).
///
/// Quarantined chunks' faults are absent from the returned
/// [`Classification`] — they have no verdict — and are reported in the
/// second tuple element instead. With a healthy engine the
/// classification is identical to [`classify_system_with`]'s.
pub fn classify_system_journaled(
    sys: &System,
    cfg: &ClassifyConfig,
    engine: &dyn Engine,
    progress: &dyn Progress,
    journal: Option<&CampaignJournal>,
) -> (Classification, Vec<QuarantinedChunk>) {
    classify_system_collapsed(sys, cfg, engine, progress, journal, false)
}

/// [`classify_system_journaled`] plus structural fault collapsing: with
/// `collapse` set, equivalence classes from
/// [`FaultClasses`] are built over the controller
/// universe and only one *campaign representative* per class — the
/// class's first member the static pre-pass left undecided — enters the
/// fault-simulation campaign. Every folded member then clones its
/// representative's verdict with its own fault identity restored.
///
/// Equivalent faults produce faulty machines that agree at every
/// observation point (system outputs, watchdog state decode, datapath
/// activity), so the representative's detection verdict, detection
/// cycle, table effects, and oracle verdict are the member's own — the
/// returned [`Classification`] is bit-identical to the uncollapsed run.
/// Members whose representative landed in a quarantined chunk are
/// absent, exactly as the representative is.
pub fn classify_system_collapsed(
    sys: &System,
    cfg: &ClassifyConfig,
    engine: &dyn Engine,
    progress: &dyn Progress,
    journal: Option<&CampaignJournal>,
    collapse: bool,
) -> (Classification, Vec<QuarantinedChunk>) {
    let faults = sys.controller_faults();

    // Static pre-pass: classify what needs no simulation, prune it
    // from the campaign. Verdicts are per-fault and deterministic, so
    // the pruned pipeline is bit-identical to the unpruned one.
    let mut decided: Vec<Option<ClassifiedFault>> = vec![None; faults.len()];
    if cfg.static_prune {
        let timer = PhaseTimer::start(progress, Phase::Lint);
        let analysis = sfr_lint::analyze_controller_static(sys);
        decided = sfr_exec::par_map_indexed(engine.threads(), faults.len(), |i| {
            static_decide(sys, &analysis, faults[i])
        });
        for _ in decided.iter().flatten() {
            progress.event(ProgressEvent::FaultPruned);
        }
        timer.finish();
    }

    // Collapse: pick one campaign representative per equivalence class
    // and remember, for every folded member, whose verdict it inherits.
    // The pre-pass decides classes all-or-none (equivalent faults have
    // identical controller tables), so a class either vanishes entirely
    // or fields exactly one representative.
    let mut campaign: Vec<StuckAt> = Vec::with_capacity(faults.len());
    let mut inherits: Vec<Option<StuckAt>> = vec![None; faults.len()];
    if collapse {
        let timer = PhaseTimer::start(progress, Phase::Collapse);
        let classes = FaultClasses::build(&sys.netlist, &faults);
        let mut chosen: HashMap<usize, StuckAt> = HashMap::new();
        for (i, (&f, d)) in faults.iter().zip(&decided).enumerate() {
            if d.is_some() {
                continue;
            }
            match chosen.get(&classes.representative(i)) {
                None => {
                    chosen.insert(classes.representative(i), f);
                    campaign.push(f);
                }
                Some(&rep) => {
                    inherits[i] = Some(rep);
                    progress.event(ProgressEvent::FaultCollapsed);
                }
            }
        }
        if progress.wants_records() {
            progress.record(&TraceRecord::Collapse {
                universe: classes.len(),
                classes: classes.class_count(),
                merged: classes.merged_count(),
            });
        }
        timer.finish();
    } else {
        campaign.extend(
            faults
                .iter()
                .zip(&decided)
                .filter(|(_, d)| d.is_none())
                .map(|(&f, _)| f),
        );
    }

    let timer = PhaseTimer::start(progress, Phase::Golden);
    let ts = TestSet::pseudorandom(sys.pattern_width(), cfg.test_patterns, cfg.test_seed)
        .expect("16-stage TPGR always constructs");
    let golden = golden_trace(sys, &ts, &cfg.run);
    timer.finish();

    let timer = PhaseTimer::start(progress, Phase::FaultSim);
    let (outcomes, quarantined) =
        run_campaign_quarantined(engine, sys, &golden, &campaign, progress, journal);
    timer.finish();

    // Steps 2–4 are independent per fault; shard them to the engine's
    // width. Results land in fault order, so the classification is
    // engine- and thread-count-invariant.
    let _timer = PhaseTimer::start(progress, Phase::Analyze);
    let classified = sfr_exec::par_map_indexed(engine.threads(), outcomes.len(), |i| {
        classify_outcome(sys, outcomes[i])
    });

    // Merge back into fault-universe order: statically-decided faults
    // carry their own record, simulated faults look themselves up, and
    // folded members look up their representative and re-label the
    // clone. Faults in quarantined chunks (and their folded members)
    // carry no verdict and stay absent.
    let simulated: HashMap<StuckAt, ClassifiedFault> =
        classified.into_iter().map(|c| (c.fault, c)).collect();
    let mut merged: Vec<ClassifiedFault> = Vec::with_capacity(faults.len());
    for (i, (&f, d)) in faults.iter().zip(decided).enumerate() {
        if let Some(c) = d {
            merged.push(c);
        } else if let Some(c) = simulated.get(&inherits[i].unwrap_or(f)) {
            let mut c = c.clone();
            c.fault = f;
            merged.push(c);
        }
    }

    (Classification { faults: merged }, quarantined)
}

/// Tries to classify one fault without simulation. `None` means the
/// fault's final class depends on campaign evidence (a detection cycle)
/// and it must be simulated.
///
/// Sound prunes, and why they reproduce the simulated pipeline bit for
/// bit:
///
/// * **CFR** (static proof or exhaustive table): the faulty machine is
///   behaviourally identical to the fault-free one on every enumerated
///   state and status, so no physical execution can ever *detect* it —
///   and [`classify_outcome`]'s CFR branch returns before consulting
///   the detection verdict anyway.
/// * **SFR** (table effects + oracle `Redundant`): the oracle proves
///   I/O-equivalence, so detection is impossible, and the SFR branch
///   likewise ignores potential-detection evidence.
///
/// Sequence-altering and oracle-irredundant faults are *not* pruned:
/// their [`SfiReason`] embeds the first detecting/ambiguous cycle,
/// which only the campaign can produce.
fn static_decide(
    sys: &System,
    analysis: &sfr_lint::StaticAnalysis,
    fault: StuckAt,
) -> Option<ClassifiedFault> {
    let sf = sys.fault_to_standalone(fault)?;
    let cfr = ClassifiedFault {
        fault,
        class: FaultClass::Cfr,
        effects: Vec::new(),
        rule_verdict: None,
    };
    if sfr_lint::statically_cfr(sys, analysis, sf).is_some() {
        return Some(cfr);
    }
    let behavior = analyze_controller_fault(sys, sf);
    if behavior.is_cfr() {
        return Some(cfr);
    }
    if behavior.sequence_altering {
        return None;
    }
    let rule_verdict = Some(judge_by_rules(sys, &behavior.effects));
    match judge(sys, &behavior.faulty_outputs) {
        Verdict::Redundant => Some(ClassifiedFault {
            fault,
            class: FaultClass::Sfr,
            effects: behavior.effects,
            rule_verdict,
        }),
        Verdict::Irredundant(_) => None,
    }
}

/// Collapses a universe-ordered SFR list to its grading set: one
/// representative per structural equivalence class (the class's first
/// SFR member) plus the member → representative map for expanding the
/// representatives' power grades back over the whole list.
///
/// Equivalence classes never split across verdicts — equivalent faults
/// share their controller table, detection behaviour, and datapath
/// activity — so each class is either absent from `sfr` or present in
/// full, and the representative's grade is every member's grade.
pub fn collapse_grading_set(
    sys: &System,
    sfr: &[StuckAt],
) -> (Vec<StuckAt>, HashMap<StuckAt, StuckAt>) {
    let universe = sys.controller_faults();
    let classes = FaultClasses::build(&sys.netlist, &universe);
    let index: HashMap<StuckAt, usize> =
        universe.iter().enumerate().map(|(i, &f)| (f, i)).collect();
    let mut reps = Vec::with_capacity(sfr.len());
    let mut rep_of = HashMap::with_capacity(sfr.len());
    let mut chosen: HashMap<usize, StuckAt> = HashMap::new();
    for &f in sfr {
        let root = classes.representative(index[&f]);
        let rep = *chosen.entry(root).or_insert_with(|| {
            reps.push(f);
            f
        });
        rep_of.insert(f, rep);
    }
    (reps, rep_of)
}

/// Attribution for `sfr analyze`: which static rule decides `fault`
/// without any simulation. Returns the deciding rule's stable label —
/// `dead-cone`, `constant-site`, `masked-propagation`,
/// `parity-cancellation` (CFR proofs, cheapest first), `table-cfr`, or
/// `oracle-sfr` — or `None` when only campaign evidence can finish the
/// classification. Decisions match [`classify_system_collapsed`]'s
/// static pre-pass exactly.
pub fn static_rule_label(
    sys: &System,
    analysis: &sfr_lint::StaticAnalysis,
    fault: StuckAt,
) -> Option<&'static str> {
    use sfr_lint::StaticCfrReason;
    let sf = sys.fault_to_standalone(fault)?;
    if let Some(reason) = sfr_lint::statically_cfr(sys, analysis, sf) {
        return Some(match reason {
            StaticCfrReason::DeadCone => "dead-cone",
            StaticCfrReason::ConstantSite => "constant-site",
            StaticCfrReason::MaskedPropagation => "masked-propagation",
            StaticCfrReason::ParityCancellation => "parity-cancellation",
        });
    }
    let behavior = analyze_controller_fault(sys, sf);
    if behavior.is_cfr() {
        return Some("table-cfr");
    }
    if behavior.sequence_altering {
        return None;
    }
    match judge(sys, &behavior.faulty_outputs) {
        Verdict::Redundant => Some("oracle-sfr"),
        Verdict::Irredundant(_) => None,
    }
}

/// Steps 2–4 of the methodology for one campaign outcome.
fn classify_outcome(sys: &System, o: sfr_faultsim::CampaignOutcome) -> ClassifiedFault {
    // Step 1: simulation-detected faults are SFI.
    if let Detection::Detected { cycle } = o.detection {
        return ClassifiedFault {
            fault: o.fault,
            class: FaultClass::Sfi(SfiReason::Simulation { cycle }),
            effects: Vec::new(),
            rule_verdict: None,
        };
    }
    // Steps 3–4: exhaustive controller analysis.
    let sf = sys
        .fault_to_standalone(o.fault)
        .expect("controller faults remap");
    let behavior = analyze_controller_fault(sys, sf);
    if behavior.is_cfr() {
        return ClassifiedFault {
            fault: o.fault,
            class: FaultClass::Cfr,
            effects: Vec::new(),
            rule_verdict: None,
        };
    }
    // The Section 3 rules reason about control line effects only
    // — they presuppose an unchanged state sequence — so they
    // are consulted only for non-sequence-altering faults.
    let rule_verdict =
        (!behavior.sequence_altering).then(|| judge_by_rules(sys, &behavior.effects));
    if behavior.sequence_altering {
        // Step 2 first: a potential detection confirms the fault
        // manifests; otherwise label by its sequence effect.
        let class = match o.detection {
            Detection::Potential { cycle } => {
                FaultClass::Sfi(SfiReason::PotentialResolved { cycle })
            }
            _ => FaultClass::Sfi(SfiReason::SequenceAltering),
        };
        return ClassifiedFault {
            fault: o.fault,
            class,
            effects: behavior.effects,
            rule_verdict,
        };
    }
    // Step 4: the oracle decides.
    let class = match judge(sys, &behavior.faulty_outputs) {
        Verdict::Redundant => FaultClass::Sfr,
        Verdict::Irredundant(m) => {
            // Prefer the concrete step-2 evidence when present.
            match o.detection {
                Detection::Potential { cycle } => {
                    FaultClass::Sfi(SfiReason::PotentialResolved { cycle })
                }
                _ => FaultClass::Sfi(SfiReason::Oracle(m)),
            }
        }
    };
    ClassifiedFault {
        fault: o.fault,
        class,
        effects: behavior.effects,
        rule_verdict,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{muxed_system, toy_system};
    use sfr_faultsim::CampaignOutcome;

    fn quick_cfg() -> ClassifyConfig {
        ClassifyConfig {
            test_patterns: 240,
            ..Default::default()
        }
    }

    #[test]
    fn classification_partitions_the_universe() {
        let sys = toy_system();
        let c = classify_system(&sys, &quick_cfg());
        assert_eq!(c.total(), sys.controller_faults().len());
        assert_eq!(c.cfr_count() + c.sfr_count() + c.sfi_count(), c.total());
        assert_eq!(c.cfr_count(), 0, "minimized controller: no CFR");
        assert!(c.sfr_count() > 0, "toy system should expose SFR faults");
        assert!(c.sfi_count() > 0);
    }

    #[test]
    fn rule_engine_never_contradicts_the_final_class() {
        for sys in [toy_system(), muxed_system()] {
            let c = classify_system(&sys, &quick_cfg());
            for f in &c.faults {
                match (f.rule_verdict, f.class) {
                    (Some(RuleVerdict::Sfr), FaultClass::Sfi(reason)) => panic!(
                        "rules said SFR but pipeline said SFI({reason:?}) for {}",
                        f.fault
                    ),
                    (Some(RuleVerdict::Sfi), FaultClass::Sfr) => {
                        panic!("rules said SFI but pipeline said SFR for {}", f.fault)
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn sfr_faults_are_never_detected_by_longer_simulation() {
        // Soundness spot-check: re-simulate every SFR fault with a
        // different, longer test set; none may be detected.
        let sys = toy_system();
        let c = classify_system(&sys, &quick_cfg());
        let sfr: Vec<_> = c.sfr().map(|f| f.fault).collect();
        let ts = sfr_tpg::TestSet::pseudorandom(sys.pattern_width(), 600, 0xBEEF).unwrap();
        let golden = golden_trace(&sys, &ts, &RunConfig::default());
        let outcomes: Vec<CampaignOutcome> = sfr_faultsim::run_serial(&sys, &golden, &sfr);
        for o in outcomes {
            assert!(
                !o.detection.is_detected(),
                "SFR fault {} was detected by a longer test",
                o.fault
            );
        }
    }

    #[test]
    fn serial_and_parallel_pipelines_agree() {
        let sys = toy_system();
        let mut cfg = quick_cfg();
        let a = classify_system(&sys, &cfg);
        cfg.parallel = false;
        let b = classify_system(&sys, &cfg);
        for (x, y) in a.faults.iter().zip(&b.faults) {
            assert_eq!(x.fault, y.fault);
            // Classes agree up to the SFI reason's detection cycle.
            assert_eq!(
                std::mem::discriminant(&x.class),
                std::mem::discriminant(&y.class)
            );
        }
    }

    #[test]
    fn threaded_classification_matches_lane_exactly() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let lane = classify_system(&sys, &cfg);
        for threads in [2, 8] {
            let engine = sfr_faultsim::ThreadedEngine::new(threads);
            let threaded = classify_system_with(&sys, &cfg, &engine, &sfr_exec::NullProgress);
            assert_eq!(lane.faults.len(), threaded.faults.len());
            for (a, b) in lane.faults.iter().zip(&threaded.faults) {
                assert_eq!(a.fault, b.fault);
                assert_eq!(a.class, b.class, "threads = {threads}, fault {}", a.fault);
                assert_eq!(a.effects, b.effects);
                assert_eq!(a.rule_verdict, b.rule_verdict);
            }
        }
    }

    #[test]
    fn static_prune_is_bit_identical() {
        for sys in [toy_system(), muxed_system()] {
            let mut cfg = quick_cfg();
            let full = classify_system(&sys, &cfg);
            cfg.static_prune = true;
            let pruned = classify_system(&sys, &cfg);
            assert_eq!(full.faults.len(), pruned.faults.len());
            for (a, b) in full.faults.iter().zip(&pruned.faults) {
                assert_eq!(format!("{a:?}"), format!("{b:?}"), "fault {}", a.fault);
            }
        }
    }

    #[test]
    fn static_prune_skips_every_provable_fault() {
        // Every final CFR or SFR verdict is reachable without campaign
        // evidence, so the pre-pass must decide at least those faults.
        let sys = toy_system();
        let mut cfg = quick_cfg();
        cfg.static_prune = true;
        let counters = sfr_exec::Counters::new();
        let c = classify_system_with(&sys, &cfg, &LaneEngine, &counters);
        let snap = counters.snapshot();
        assert!(snap.faults_pruned > 0, "toy system has SFR faults to prune");
        assert!(snap.faults_pruned >= c.cfr_count() + c.sfr_count());
        assert_eq!(
            snap.faults_simulated,
            c.total() - snap.faults_pruned,
            "pruned faults must not enter the campaign"
        );
    }

    #[test]
    fn collapsed_classification_is_bit_identical() {
        for sys in [toy_system(), muxed_system()] {
            for static_prune in [false, true] {
                let cfg = ClassifyConfig {
                    static_prune,
                    ..quick_cfg()
                };
                let (plain, _) = classify_system_collapsed(
                    &sys,
                    &cfg,
                    &LaneEngine,
                    &sfr_exec::NullProgress,
                    None,
                    false,
                );
                let (collapsed, _) = classify_system_collapsed(
                    &sys,
                    &cfg,
                    &LaneEngine,
                    &sfr_exec::NullProgress,
                    None,
                    true,
                );
                assert_eq!(plain.faults.len(), collapsed.faults.len());
                for (a, b) in plain.faults.iter().zip(&collapsed.faults) {
                    assert_eq!(format!("{a:?}"), format!("{b:?}"), "fault {}", a.fault);
                }
            }
        }
    }

    #[test]
    fn collapsed_campaign_simulates_only_representatives() {
        let sys = toy_system();
        let counters = sfr_exec::Counters::new();
        let (c, _) =
            classify_system_collapsed(&sys, &quick_cfg(), &LaneEngine, &counters, None, true);
        let snap = counters.snapshot();
        assert_eq!(c.total(), sys.controller_faults().len());
        assert_eq!(
            snap.faults_simulated + snap.faults_collapsed + snap.faults_pruned,
            c.total(),
            "every fault is simulated, folded, or statically pruned"
        );
        let classes = FaultClasses::build(&sys.netlist, &sys.controller_faults());
        assert_eq!(snap.faults_collapsed, classes.merged_count());
    }

    #[test]
    fn sfr_faults_have_effects_recorded() {
        let sys = toy_system();
        let c = classify_system(&sys, &quick_cfg());
        for f in c.sfr() {
            assert!(
                !f.effects.is_empty(),
                "an SFR fault must have at least one control line effect"
            );
        }
    }
}
