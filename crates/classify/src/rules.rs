//! The paper's Section 3 structural rules over control line effects.
//!
//! Given the control line effects of a fault and the schedule metadata
//! (mux activity, register load steps, variable lifespans), these rules
//! decide SFI/SFR for the structurally clear cases and defer the
//! data-dependent ones:
//!
//! * select-line change while the mux is **active** → SFI (§3.1);
//! * select-line change while **inactive** (a don't-care) → SFR effect;
//! * **skipped** register load → SFI (§3.2, "irretrievably disrupted");
//! * **extra** load while the register is idle → SFR effect;
//! * extra load inside a lifespan → *potentially disruptive*: whether the
//!   read sees garbage or a rewritten-unchanged/overwritten value needs
//!   the data trace (§3.2's read-time analysis) — deferred to the
//!   symbolic [oracle](crate::judge).
//!
//! The composite verdict over a fault's effects: any SFI effect makes the
//! fault SFI; all-SFR effects make it SFR; otherwise it is undecided at
//! this level. The `pipeline` cross-checks every decided verdict against
//! the oracle.

use crate::table::ControlLineEffect;
use sfr_faultsim::System;
use sfr_rtl::{CtrlId, CtrlKind};

/// The rule engine's judgement of one control line effect.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EffectClass {
    /// Changes a cared-for select of an active mux: irredundant.
    SfiActiveSelect,
    /// Skips a required register load: irredundant.
    SfiSkippedLoad,
    /// Don't-care select flip (inactive mux): redundant.
    SfrInactiveSelect,
    /// Extra load while every variable of the register is outside its
    /// lifespan: redundant.
    SfrIdleExtraLoad,
    /// Extra load inside some lifespan: needs the data trace (Fig. 5's
    /// LDf2/LDf3/LDf4 cases).
    PotentiallyDisruptiveLoad,
}

impl EffectClass {
    /// Whether the effect is decided irredundant by structure alone.
    pub fn is_sfi(self) -> bool {
        matches!(
            self,
            EffectClass::SfiActiveSelect | EffectClass::SfiSkippedLoad
        )
    }

    /// Whether the effect is decided redundant by structure alone.
    pub fn is_sfr(self) -> bool {
        matches!(
            self,
            EffectClass::SfrInactiveSelect | EffectClass::SfrIdleExtraLoad
        )
    }
}

/// The rule engine's composite verdict for a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleVerdict {
    /// At least one structurally-SFI effect.
    Sfi,
    /// Every effect structurally SFR.
    Sfr,
    /// Some effects need data-trace analysis and none is decisive.
    Undecided,
}

/// Classifies a single control line effect against the schedule.
pub fn classify_effect(sys: &System, e: &ControlLineEffect) -> EffectClass {
    let meta = &sys.meta;
    let line = CtrlId(e.line);
    match sys.datapath.control()[e.line].kind() {
        CtrlKind::Select => {
            // A select is a care only in body steps where its mux is
            // active; RESET and HOLD selects are always don't-cares.
            if let Some(step) = meta.step_of_state(e.state) {
                let active = sys
                    .datapath
                    .muxes_on_select(line)
                    .iter()
                    .any(|m| meta.mux_active_steps[m.0].contains(&step));
                if active {
                    return EffectClass::SfiActiveSelect;
                }
            }
            EffectClass::SfrInactiveSelect
        }
        CtrlKind::Load => {
            if e.fault_free && !e.faulty {
                // A load only happens fault-free in body steps.
                return EffectClass::SfiSkippedLoad;
            }
            // Extra load. In RESET, registers hold pre-run garbage and
            // are idle; in HOLD, only held (output) variables are live.
            let regs = sys.datapath.registers_on_load(line);
            match meta.step_of_state(e.state) {
                Some(step) => {
                    let any_live = regs.iter().any(|r| meta.reg_live_at(r.0, step));
                    if any_live {
                        EffectClass::PotentiallyDisruptiveLoad
                    } else {
                        EffectClass::SfrIdleExtraLoad
                    }
                }
                None if e.state == meta.hold_state() => {
                    let any_held = regs.iter().any(|r| meta.spans[r.0].iter().any(|s| s.held));
                    if any_held {
                        EffectClass::PotentiallyDisruptiveLoad
                    } else {
                        EffectClass::SfrIdleExtraLoad
                    }
                }
                None => EffectClass::SfrIdleExtraLoad, // RESET
            }
        }
    }
}

/// Applies the rules to all of a fault's effects.
///
/// Per §3.3: "if any one control line effect caused by the fault is SFI,
/// the fault is SFI; if every control line effect is SFR, the fault is
/// SFR" — with the data-dependent extra-load cases left undecided here.
pub fn judge_by_rules(sys: &System, effects: &[ControlLineEffect]) -> RuleVerdict {
    let mut all_sfr = true;
    for e in effects {
        let c = classify_effect(sys, e);
        if c.is_sfi() {
            return RuleVerdict::Sfi;
        }
        if !c.is_sfr() {
            all_sfr = false;
        }
    }
    if all_sfr {
        RuleVerdict::Sfr
    } else {
        RuleVerdict::Undecided
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{muxed_system, toy_system};

    #[test]
    fn skipped_load_rule() {
        let sys = toy_system();
        let ld = sys.datapath.find_ctrl("LD_R4").unwrap();
        let e = ControlLineEffect {
            state: sys.meta.state_of_step(3),
            line: ld.0,
            fault_free: true,
            faulty: false,
        };
        assert_eq!(classify_effect(&sys, &e), EffectClass::SfiSkippedLoad);
        assert_eq!(judge_by_rules(&sys, &[e]), RuleVerdict::Sfi);
    }

    #[test]
    fn idle_extra_load_rule() {
        let sys = toy_system();
        // R3 (t) is written CS2, read CS3: idle at CS1.
        let ld = sys.datapath.find_ctrl("LD_R3").unwrap();
        let e = ControlLineEffect {
            state: sys.meta.state_of_step(1),
            line: ld.0,
            fault_free: false,
            faulty: true,
        };
        assert_eq!(classify_effect(&sys, &e), EffectClass::SfrIdleExtraLoad);
        assert_eq!(judge_by_rules(&sys, &[e]), RuleVerdict::Sfr);
    }

    #[test]
    fn in_lifespan_extra_load_is_deferred() {
        let sys = toy_system();
        // R1 (va) live at CS2.
        let ld = sys.datapath.find_ctrl("LD_R1").unwrap();
        let e = ControlLineEffect {
            state: sys.meta.state_of_step(2),
            line: ld.0,
            fault_free: false,
            faulty: true,
        };
        assert_eq!(
            classify_effect(&sys, &e),
            EffectClass::PotentiallyDisruptiveLoad
        );
        assert_eq!(judge_by_rules(&sys, &[e]), RuleVerdict::Undecided);
    }

    #[test]
    fn reset_extra_load_is_sfr() {
        let sys = toy_system();
        let ld = sys.datapath.find_ctrl("LD_R1").unwrap();
        let e = ControlLineEffect {
            state: sys.meta.reset_state(),
            line: ld.0,
            fault_free: false,
            faulty: true,
        };
        assert_eq!(classify_effect(&sys, &e), EffectClass::SfrIdleExtraLoad);
    }

    #[test]
    fn hold_extra_load_into_output_register_is_deferred() {
        let sys = toy_system();
        let ld = sys.datapath.find_ctrl("LD_R4").unwrap();
        let e = ControlLineEffect {
            state: sys.meta.hold_state(),
            line: ld.0,
            fault_free: false,
            faulty: true,
        };
        assert_eq!(
            classify_effect(&sys, &e),
            EffectClass::PotentiallyDisruptiveLoad
        );
    }

    #[test]
    fn hold_extra_load_into_scratch_register_is_sfr() {
        let sys = toy_system();
        let ld = sys.datapath.find_ctrl("LD_R3").unwrap();
        let e = ControlLineEffect {
            state: sys.meta.hold_state(),
            line: ld.0,
            fault_free: false,
            faulty: true,
        };
        assert_eq!(classify_effect(&sys, &e), EffectClass::SfrIdleExtraLoad);
    }

    #[test]
    fn select_rules_follow_mux_activity() {
        let sys = muxed_system();
        let ms = sys.datapath.find_ctrl("MS1").unwrap();
        // Active in CS2 and CS3, inactive in CS1/RESET/HOLD.
        let active = ControlLineEffect {
            state: sys.meta.state_of_step(2),
            line: ms.0,
            fault_free: sys.ctrl.realized_outputs[sys.meta.state_of_step(2).0][ms.0],
            faulty: !sys.ctrl.realized_outputs[sys.meta.state_of_step(2).0][ms.0],
        };
        assert_eq!(classify_effect(&sys, &active), EffectClass::SfiActiveSelect);
        let inactive = ControlLineEffect {
            state: sys.meta.state_of_step(1),
            line: ms.0,
            fault_free: false,
            faulty: true,
        };
        assert_eq!(
            classify_effect(&sys, &inactive),
            EffectClass::SfrInactiveSelect
        );
        let hold = ControlLineEffect {
            state: sys.meta.hold_state(),
            line: ms.0,
            fault_free: false,
            faulty: true,
        };
        assert_eq!(classify_effect(&sys, &hold), EffectClass::SfrInactiveSelect);
    }

    #[test]
    fn mixed_effects_compose_per_section_3_3() {
        let sys = toy_system();
        let ld3 = sys.datapath.find_ctrl("LD_R3").unwrap();
        let ld4 = sys.datapath.find_ctrl("LD_R4").unwrap();
        let sfr = ControlLineEffect {
            state: sys.meta.state_of_step(1),
            line: ld3.0,
            fault_free: false,
            faulty: true,
        };
        let sfi = ControlLineEffect {
            state: sys.meta.state_of_step(3),
            line: ld4.0,
            fault_free: true,
            faulty: false,
        };
        assert_eq!(judge_by_rules(&sys, &[sfr, sfi]), RuleVerdict::Sfi);
        assert_eq!(judge_by_rules(&sys, &[sfr]), RuleVerdict::Sfr);
        assert_eq!(judge_by_rules(&sys, &[]), RuleVerdict::Sfr);
    }
}
