//! Shared test fixtures for the classification crate.

use sfr_faultsim::{System, SystemConfig};
use sfr_hls::{emit, BindingBuilder, DesignBuilder, Rhs};
use sfr_rtl::FuOp;

/// A 3-step toy: CS1 samples `a`, `b`; CS2 `t = a*b`; CS3 `s = t + a`.
pub(crate) fn toy_system() -> System {
    let mut d = DesignBuilder::new("toy", 4, 3);
    let pa = d.port("a");
    let pb = d.port("b");
    let va = d.var("va");
    let vb = d.var("vb");
    let t = d.var("t");
    let s = d.var("s");
    d.sample(1, va, Rhs::Port(pa));
    d.sample(1, vb, Rhs::Port(pb));
    let m = d.compute(2, t, FuOp::Mul, Rhs::Var(va), Rhs::Var(vb));
    let a = d.compute(3, s, FuOp::Add, Rhs::Var(t), Rhs::Var(va));
    d.output("s_out", s);
    let d = d.finish().expect("valid design");
    let mut bb = BindingBuilder::new(&d);
    bb.bind(va, "R1")
        .bind(vb, "R2")
        .bind(t, "R3")
        .bind(s, "R4")
        .bind_op(m, "MUL1")
        .bind_op(a, "ADD1");
    let binding = bb.finish().expect("valid binding");
    System::build(&emit(&d, &binding).expect("emits"), SystemConfig::default())
        .expect("system builds")
}

/// A design with a shared adder, so an operand mux (and its select-line
/// don't-cares) exists: CS1 samples; CS2 `t1 = a + b`; CS3 `t2 = t1 + b`.
pub(crate) fn muxed_system() -> System {
    let mut d = DesignBuilder::new("muxed", 4, 3);
    let pa = d.port("a");
    let pb = d.port("b");
    let va = d.var("va");
    let vb = d.var("vb");
    let t1 = d.var("t1");
    let t2 = d.var("t2");
    d.sample(1, va, Rhs::Port(pa));
    d.sample(1, vb, Rhs::Port(pb));
    let o1 = d.compute(2, t1, FuOp::Add, Rhs::Var(va), Rhs::Var(vb));
    let o2 = d.compute(3, t2, FuOp::Add, Rhs::Var(t1), Rhs::Var(vb));
    d.output("o", t2);
    let d = d.finish().expect("valid design");
    let mut bb = BindingBuilder::new(&d);
    bb.bind(va, "R1")
        .bind(vb, "R2")
        .bind(t1, "R3")
        .bind(t2, "R4")
        .bind_op(o1, "ADD1")
        .bind_op(o2, "ADD1");
    let binding = bb.finish().expect("valid binding");
    System::build(&emit(&d, &binding).expect("emits"), SystemConfig::default())
        .expect("system builds")
}
