//! Power grading of SFR faults (Sections 4–6 of the paper).
//!
//! SFR faults are invisible at the data outputs, but they change dynamic
//! power. Each fault is graded by Monte Carlo power simulation — batches
//! of runs with fresh pseudorandom data until the mean converges — and
//! *flagged* when its percentage change from the fault-free baseline
//! exceeds a tolerance band (the paper uses ±5%).
//!
//! Grading is **lane-packed**: up to [`MAX_PARALLEL_FAULTS`] faults plus
//! the fault-free baseline (lane 0) share every simulation pass of one
//! 64-lane [`ParallelFaultSim`], with per-lane switching activity
//! accumulated bit-parallel ([`sfr_netlist::LaneActivity`]). Lane 0
//! doubles as a baseline-activity cache: the separate fault-free Monte
//! Carlo the scalar path runs per design comes for free with pack 0.
//! Every lane is an exact dual-rail simulation, so lane-packed grades
//! are bit-identical to the scalar reference path
//! ([`grade_faults_scalar_with`]) — same means, percentages, and flags
//! at any thread count.

use sfr_exec::{
    par_map_indexed, par_map_indexed_caught, LaneGrade, NullProgress, Phase, PhaseTimer, Progress,
    ProgressEvent, TraceRecord, WorkKind,
};
use sfr_faultsim::{RunConfig, SimKernel, System};
use sfr_journal::{decode_str, encode_str, CampaignJournal, RecordKind};
use sfr_netlist::{
    CycleSim, Logic, ParallelFaultSim, StuckAt, TapeProgram, TapeSim, TapeWord, TooManyFaultsError,
    MAX_PARALLEL_FAULTS, MAX_WIDE_FAULTS, W256,
};
use sfr_power_model::{
    power_from_activity_where, power_from_lane_activity_where, power_from_tape_activity_where,
    run_monte_carlo, run_monte_carlo_lanes, run_monte_carlo_par, MonteCarloConfig,
    MonteCarloResult, PowerConfig, PowerReport,
};
use sfr_tpg::TestSet;

/// Configuration for power measurement and grading.
#[derive(Debug, Clone)]
pub struct GradeConfig {
    /// Electrical operating point.
    pub power: PowerConfig,
    /// Monte Carlo convergence settings.
    pub mc: MonteCarloConfig,
    /// Patterns per Monte Carlo batch.
    pub patterns_per_batch: usize,
    /// Base TPGR seed (batch `i` uses `seed + i`).
    pub seed: u32,
    /// Run shaping (loop guard, hold cycles).
    pub run: RunConfig,
    /// Detection tolerance band, percent (the paper's 5%).
    pub threshold_pct: f64,
}

impl Default for GradeConfig {
    fn default() -> Self {
        GradeConfig {
            power: PowerConfig::default(),
            mc: MonteCarloConfig {
                rel_tolerance: 0.01,
                min_batches: 6,
                max_batches: 60,
            },
            patterns_per_batch: 120,
            seed: 0xACE1,
            // Power runs are tester-bounded: a run that has not reached
            // HOLD after 64 cycles is reset (looping benchmarks can
            // otherwise wander for an entire batch, starving HOLD-state
            // activity of coverage).
            run: RunConfig {
                max_cycles_per_run: 64,
                hold_cycles: 2,
                cycle_budget: 0,
            },
            threshold_pct: 5.0,
        }
    }
}

/// One SFR fault's power grade.
#[derive(Debug, Clone, Copy)]
pub struct PowerGrade {
    /// The fault.
    pub fault: StuckAt,
    /// Monte Carlo mean datapath power under the fault, µW.
    pub mean_uw: f64,
    /// Percentage change from the fault-free baseline.
    pub pct_change: f64,
    /// Whether the change escapes the tolerance band.
    pub flagged: bool,
}

/// Measures datapath power for one (optionally faulty) system over a
/// specific test set — the paper's Table 3 measurement.
///
/// Runs start from a known state (datapath registers cleared) so that
/// switching activity is fully defined; power is accounted over the
/// datapath only (every gate outside the controller's range), matching
/// the paper's "power consumed by the datapath".
pub fn measure_power_with_testset(
    sys: &System,
    fault: Option<StuckAt>,
    ts: &TestSet,
    cfg: &GradeConfig,
) -> PowerReport {
    let mut sim = match fault {
        Some(f) => CycleSim::with_fault(&sys.netlist, f),
        None => CycleSim::new(&sys.netlist),
    };
    sim.track_activity(true);
    let hold = sys.meta.hold_state();
    let ceiling = cfg.run.run_ceiling();
    let mut idx = 0usize;
    while idx < ts.len() {
        sys.reset_sim(&mut sim, Logic::Zero);
        let mut len = 0usize;
        let mut in_hold_for = 0usize;
        while idx < ts.len() && len < ceiling {
            sys.apply_pattern(&mut sim, ts.patterns()[idx]);
            idx += 1;
            len += 1;
            sim.eval();
            // Follow the *fault-free* controller's own sequencing; the
            // faulty controller sequences itself (SFR faults do not
            // change sequencing, which classification guarantees).
            let st = sys.decode_state(&sim);
            sim.clock();
            if st == Some(hold) {
                in_hold_for += 1;
                if in_hold_for > cfg.run.hold_cycles {
                    break;
                }
            }
        }
    }
    power_from_activity_where(&sys.netlist, sim.activity(), &cfg.power, |g| {
        !sys.is_controller_gate(g)
    })
}

/// Lane-packed [`measure_power_with_testset`]: one 64-lane pass measures
/// the fault-free baseline (lane 0) and up to [`MAX_PARALLEL_FAULTS`]
/// faults at once, returning one [`PowerReport`] per lane
/// (`reports[0]` fault-free, `reports[1 + i]` under `faults[i]`).
///
/// Run boundaries are steered by decoding **lane 0** — the fault-free
/// controller — which is exact for the baseline and equal to each fault
/// lane's own sequencing because SFR faults never alter the controller's
/// state sequence (the same guarantee the scalar path already leans on).
/// Per-run resets overwrite sequential state only, so the toggle edge
/// between consecutive runs is counted exactly as the scalar path counts
/// it; every report is bit-identical to a scalar measurement of that
/// lane's circuit.
///
/// # Errors
///
/// Returns [`TooManyFaultsError`] if more than [`MAX_PARALLEL_FAULTS`]
/// faults are packed.
pub fn measure_power_lanes_with_testset(
    sys: &System,
    faults: &[StuckAt],
    ts: &TestSet,
    cfg: &GradeConfig,
) -> Result<Vec<PowerReport>, TooManyFaultsError> {
    measure_power_lanes_watched(sys, faults, ts, cfg).map(|(reports, _)| reports)
}

/// [`measure_power_lanes_with_testset`] plus the watchdog's stall mask:
/// bit `i` is set when `faults[i]`'s lane was *not* in HOLD at the end
/// of a run the fault-free lane completed normally — i.e. the fault
/// stalled or diverted the controller's sequencing and would run away
/// without the tester-imposed ceiling ([`RunConfig::run_ceiling`]).
///
/// The criterion is relative to lane 0 on the same data, so runs the
/// fault-free machine itself cannot finish (looping benchmarks hitting
/// the loop guard) flag nobody: only genuine fault-induced divergence
/// trips the watchdog.
///
/// The watchdog is armed by [`RunConfig::cycle_budget`]; with the
/// default budget of 0 no stall accounting happens and the mask is
/// always 0 — existing grading behaviour is untouched.
pub fn measure_power_lanes_watched(
    sys: &System,
    faults: &[StuckAt],
    ts: &TestSet,
    cfg: &GradeConfig,
) -> Result<(Vec<PowerReport>, u64), TooManyFaultsError> {
    let mut sim = ParallelFaultSim::new(&sys.netlist, faults)?;
    sim.track_activity(true);
    let hold = sys.meta.hold_state();
    let ceiling = cfg.run.run_ceiling();
    let armed = cfg.run.cycle_budget != 0;
    let mut idx = 0usize;
    let mut stalled = 0u64;
    while idx < ts.len() {
        sys.reset_psim(&mut sim, Logic::Zero);
        let mut len = 0usize;
        let mut in_hold_for = 0usize;
        while idx < ts.len() && len < ceiling {
            sys.apply_pattern_parallel(&mut sim, ts.patterns()[idx]);
            idx += 1;
            len += 1;
            sim.eval();
            let st = sys.decode_state_lane(&sim, 0);
            let ending = armed && st == Some(hold) && in_hold_for + 1 > cfg.run.hold_cycles;
            if ending {
                // Lane 0 completed this run; a fault lane still outside
                // HOLD at the same instant has lost the sequence.
                for (i, _) in faults.iter().enumerate() {
                    if stalled & (1 << i) == 0 && sys.decode_state_lane(&sim, i + 1) != Some(hold) {
                        stalled |= 1 << i;
                    }
                }
            }
            sim.clock();
            if st == Some(hold) {
                in_hold_for += 1;
                if in_hold_for > cfg.run.hold_cycles {
                    break;
                }
            }
        }
    }
    let reports = power_from_lane_activity_where(
        &sys.netlist,
        sim.activity().expect("tracking enabled above"),
        &cfg.power,
        |g| !sys.is_controller_gate(g),
    );
    Ok((reports, stalled))
}

/// Tape-compiled [`measure_power_lanes_watched`]: the same measurement
/// driven by a pre-compiled [`TapeProgram`] instead of the interpretive
/// [`ParallelFaultSim`].
///
/// The program is compiled once per fault pack and shared by every
/// Monte Carlo batch; this form builds a fresh [`TapeSim`] per call,
/// while [`measure_power_tape_watched_with`] reuses a caller-owned one
/// across batches. Run steering (lane 0),
/// per-run resets, the HOLD exit and the stall watchdog replicate the
/// interpretive loop operation-for-operation, and each lane's extracted
/// activity feeds the identical per-lane power accounting — reports are
/// bit-identical to the interpretive path on the same fault pack.
///
/// The stall mask is returned as little-endian `u64` words (bit `i % 64`
/// of word `i / 64` covers `faults[i]`), because a wide program grades
/// up to [`MAX_WIDE_FAULTS`] faults — more than one word can index.
pub fn measure_power_tape_watched<W: TapeWord>(
    sys: &System,
    prog: &TapeProgram<W>,
    ts: &TestSet,
    cfg: &GradeConfig,
) -> (Vec<PowerReport>, Vec<u64>) {
    let mut sim = TapeSim::new(prog);
    measure_power_tape_watched_with(sys, &mut sim, ts, cfg)
}

/// [`measure_power_tape_watched`] over a caller-owned [`TapeSim`], so
/// consecutive Monte Carlo batches reuse one sim's buffers (slot
/// arrays, deviation scratch, activity counter matrix) instead of
/// reallocating them per batch. Activity counters restart from zero on
/// every call; reports are identical to the fresh-sim form.
pub fn measure_power_tape_watched_with<W: TapeWord>(
    sys: &System,
    sim: &mut TapeSim<'_, W>,
    ts: &TestSet,
    cfg: &GradeConfig,
) -> (Vec<PowerReport>, Vec<u64>) {
    let n_faults = sim.faults().len();
    sim.track_activity(true);
    let hold = sys.meta.hold_state();
    let ceiling = cfg.run.run_ceiling();
    let armed = cfg.run.cycle_budget != 0;
    let mut idx = 0usize;
    let mut stalled = vec![0u64; n_faults.div_ceil(64).max(1)];
    while idx < ts.len() {
        sys.reset_tape(sim, Logic::Zero);
        let mut len = 0usize;
        let mut in_hold_for = 0usize;
        while idx < ts.len() && len < ceiling {
            sys.apply_pattern_tape(sim, ts.patterns()[idx]);
            idx += 1;
            len += 1;
            sim.eval();
            let st = sys.decode_state_tape_lane(sim, 0);
            let ending = armed && st == Some(hold) && in_hold_for + 1 > cfg.run.hold_cycles;
            if ending {
                // Lane 0 completed this run; a fault lane still outside
                // HOLD at the same instant has lost the sequence.
                for i in 0..n_faults {
                    if !stall_bit(&stalled, i)
                        && sys.decode_state_tape_lane(sim, i + 1) != Some(hold)
                    {
                        stalled[i / 64] |= 1 << (i % 64);
                    }
                }
            }
            sim.clock();
            if st == Some(hold) {
                in_hold_for += 1;
                if in_hold_for > cfg.run.hold_cycles {
                    break;
                }
            }
        }
    }
    let act = sim.activity().expect("tracking enabled above");
    let reports = power_from_tape_activity_where(&sys.netlist, act, &cfg.power, |g| {
        !sys.is_controller_gate(g)
    });
    (reports, stalled)
}

/// Reads bit `i` of a multi-word stall mask.
fn stall_bit(stalls: &[u64], i: usize) -> bool {
    stalls.get(i / 64).is_some_and(|w| w >> (i % 64) & 1 == 1)
}

/// One Monte Carlo batch: fresh pseudorandom data keyed by the *batch
/// index* (never by the executing thread), so serial and sharded
/// estimations draw identical samples.
fn mc_batch(sys: &System, fault: Option<StuckAt>, cfg: &GradeConfig, batch: usize) -> PowerReport {
    let ts = batch_testset(sys, cfg, batch);
    measure_power_with_testset(sys, fault, &ts, cfg)
}

/// The pseudorandom test set of Monte Carlo batch `batch` — shared by
/// the scalar and lane-packed paths, so their sample streams align.
fn batch_testset(sys: &System, cfg: &GradeConfig, batch: usize) -> TestSet {
    TestSet::pseudorandom(
        sys.pattern_width(),
        cfg.patterns_per_batch,
        cfg.seed.wrapping_add(batch as u32),
    )
    .expect("16-stage TPGR always constructs")
}

/// Lane-packed [`mc_batch`]: one batch's reports for a whole fault pack
/// (lane 0 fault-free first).
fn mc_batch_lanes(
    sys: &System,
    faults: &[StuckAt],
    cfg: &GradeConfig,
    batch: usize,
) -> Result<(Vec<PowerReport>, u64), TooManyFaultsError> {
    let ts = batch_testset(sys, cfg, batch);
    measure_power_lanes_watched(sys, faults, &ts, cfg)
}

/// Monte Carlo datapath power of an (optionally faulty) system.
pub fn measure_power_monte_carlo(
    sys: &System,
    fault: Option<StuckAt>,
    cfg: &GradeConfig,
) -> MonteCarloResult {
    run_monte_carlo(&cfg.mc, |batch| mc_batch(sys, fault, cfg, batch))
}

/// Monte Carlo datapath power with batches sharded across `threads`
/// workers — byte-identical to [`measure_power_monte_carlo`] (see
/// [`run_monte_carlo_par`]).
pub fn measure_power_monte_carlo_par(
    sys: &System,
    fault: Option<StuckAt>,
    cfg: &GradeConfig,
    threads: usize,
) -> MonteCarloResult {
    run_monte_carlo_par(&cfg.mc, threads, |batch| mc_batch(sys, fault, cfg, batch))
}

/// Grades a set of SFR faults against the fault-free baseline.
///
/// Returns the baseline measurement and one [`PowerGrade`] per fault, in
/// input order. Batches are *paired*: fault `f`'s batch `i` uses the
/// same pseudorandom data as the baseline's batch `i`, which removes
/// test-set variance from the percentage change (the quantity Table 3
/// shows to be stable across test sets).
pub fn grade_faults(
    sys: &System,
    faults: &[StuckAt],
    cfg: &GradeConfig,
) -> (MonteCarloResult, Vec<PowerGrade>) {
    grade_faults_with(sys, faults, cfg, 1, &NullProgress)
}

/// [`grade_faults`] sharded across `threads` workers, reporting one
/// [`ProgressEvent::MonteCarlo`] per estimation (faults + baseline), one
/// [`ProgressEvent::GradePack`] per lane pack, and one
/// [`ProgressEvent::FaultGraded`] per fault.
///
/// Faults are packed [`MAX_PARALLEL_FAULTS`] to a 64-lane simulator
/// (lane 0 fault-free) and packs shard across `threads` workers, so a
/// sweep costs `O(faults / 63)` simulation passes per thread instead of
/// `O(faults)`. Pack 0's lane 0 is the baseline-activity cache: it *is*
/// the fault-free Monte Carlo estimation, so no separate baseline sweep
/// runs. Each lane's convergence is the serial stopping rule replayed on
/// that lane's own sample prefix ([`run_monte_carlo_lanes`]), and every
/// pack is a pure function of its fault slice — grades are bit-identical
/// to [`grade_faults_scalar_with`] and to themselves at any thread
/// count.
pub fn grade_faults_with(
    sys: &System,
    faults: &[StuckAt],
    cfg: &GradeConfig,
    threads: usize,
    progress: &dyn Progress,
) -> (MonteCarloResult, Vec<PowerGrade>) {
    let report = grade_faults_journaled(sys, faults, cfg, threads, progress, None);
    (report.baseline, report.grades)
}

/// [`grade_faults_with`] on an explicit simulation kernel (see
/// [`grade_faults_journaled_with_kernel`] for the kernel contract).
pub fn grade_faults_with_kernel(
    sys: &System,
    faults: &[StuckAt],
    cfg: &GradeConfig,
    threads: usize,
    progress: &dyn Progress,
    kernel: SimKernel,
) -> (MonteCarloResult, Vec<PowerGrade>) {
    let report =
        grade_faults_journaled_with_kernel(sys, faults, cfg, threads, progress, None, kernel);
    (report.baseline, report.grades)
}

/// One resilience incident observed while grading.
#[derive(Debug, Clone, PartialEq)]
pub enum GradeIncident {
    /// A whole lane pack panicked twice and was quarantined: its faults
    /// carry no grade, the rest of the study is unaffected.
    QuarantinedPack {
        /// Pack index (chunks of [`MAX_PARALLEL_FAULTS`]).
        pack: usize,
        /// The faults that were in the pack.
        faults: Vec<StuckAt>,
        /// The panic payload message.
        message: String,
    },
    /// The watchdog caught a fault whose lane was still outside HOLD
    /// when the fault-free lane finished a run: a runaway/stalling
    /// fault, graded on budget-bounded cycles and reported distinctly.
    BudgetExhausted {
        /// The runaway fault.
        fault: StuckAt,
    },
}

/// The full grading outcome: baseline, per-fault grades (faults in
/// quarantined packs are absent), and the incident list.
#[derive(Debug, Clone)]
pub struct GradeReport {
    /// Fault-free Monte Carlo baseline (lane 0 of pack 0).
    pub baseline: MonteCarloResult,
    /// One grade per successfully graded fault, in input order.
    pub grades: Vec<PowerGrade>,
    /// Quarantine and watchdog incidents, in pack/fault order.
    pub incidents: Vec<GradeIncident>,
}

/// What one pack contributed: either its lane estimations plus the
/// accumulated watchdog stall mask, or a quarantine record.
enum PackOutcome {
    Computed {
        results: Vec<MonteCarloResult>,
        /// Watchdog stall mask in little-endian `u64` words (one word
        /// for interpretive/tape packs, four for tape-wide packs).
        stalls: Vec<u64>,
        restored: bool,
        /// Simulator cycles the pack's Monte Carlo loop evaluated
        /// (0 when restored from a journal — nothing was simulated).
        cycles: u64,
        /// Wall time spent simulating, measured inside the worker.
        elapsed: std::time::Duration,
    },
    Quarantined {
        message: String,
    },
}

/// Journal payload tags for grade packs.
const PACK_OK: u64 = 0;
const PACK_QUARANTINED: u64 = 1;
/// A pack graded by the wide tape kernel (more than
/// [`MAX_PARALLEL_FAULTS`] faults): the stall mask spans several words,
/// so the payload carries an explicit stall-word count. The tag is
/// distinct from [`PACK_OK`] so a journal written at one pack width can
/// never be misread as a pack of the other width — a resume that
/// switches kernel family simply recomputes.
const PACK_OK_WIDE: u64 = 2;

fn encode_pack(results: &[MonteCarloResult], stalls: &[u64], wide: bool) -> Vec<u64> {
    let mut words = if wide {
        let mut w = vec![PACK_OK_WIDE, stalls.len() as u64];
        w.extend_from_slice(stalls);
        w.push(results.len() as u64);
        w
    } else {
        // The narrow layout is byte-compatible with every journal ever
        // written by the interpretive path, so interpretive and tape
        // (u64) runs restore each other's packs verbatim.
        vec![
            PACK_OK,
            stalls.first().copied().unwrap_or(0),
            results.len() as u64,
        ]
    };
    for r in results {
        words.push(r.mean_uw.to_bits());
        words.push(r.half_width_uw.to_bits());
        words.push(r.batches as u64);
        words.push(u64::from(r.converged));
    }
    words
}

fn encode_quarantine(message: &str) -> Vec<u64> {
    let mut words = vec![PACK_QUARANTINED];
    words.extend(encode_str(message));
    words
}

/// Decodes the per-lane `(mean, half-width, batches, converged)` tail of
/// a pack payload.
fn decode_lane_words(words: &[u64]) -> Vec<MonteCarloResult> {
    words
        .chunks(4)
        .map(|c| MonteCarloResult {
            mean_uw: f64::from_bits(c[0]),
            half_width_uw: f64::from_bits(c[1]),
            batches: c[2] as usize,
            converged: c[3] != 0,
        })
        .collect()
}

/// Decodes a journaled pack payload; `None` means the payload is not a
/// valid record for a pack with `lanes` lanes at the requested width
/// (the pack is recomputed). `wide` selects which OK tag is acceptable:
/// restoring a narrow record into a wide run (or vice versa) would pair
/// the results with the wrong fault slice, so cross-width records are
/// rejected by tag before any shape check.
fn decode_pack(words: &[u64], lanes: usize, wide: bool) -> Option<PackOutcome> {
    let restored = |results, stalls| {
        Some(PackOutcome::Computed {
            results,
            stalls,
            restored: true,
            cycles: 0,
            elapsed: std::time::Duration::ZERO,
        })
    };
    match *words.first()? {
        PACK_OK if !wide => {
            let stalls = vec![*words.get(1)?];
            let n = usize::try_from(*words.get(2)?).ok()?;
            if n != lanes || words.len() != 3 + 4 * n {
                return None;
            }
            restored(decode_lane_words(&words[3..]), stalls)
        }
        PACK_OK_WIDE if wide => {
            let n_stall = usize::try_from(*words.get(1)?).ok()?;
            let stalls = words.get(2..2 + n_stall)?.to_vec();
            let n = usize::try_from(*words.get(2 + n_stall)?).ok()?;
            if n != lanes || words.len() != 3 + n_stall + 4 * n {
                return None;
            }
            restored(decode_lane_words(&words[3 + n_stall..]), stalls)
        }
        PACK_QUARANTINED => {
            let (message, _) = decode_str(&words[1..])?;
            Some(PackOutcome::Quarantined { message })
        }
        _ => None,
    }
}

/// The crash-safe, fault-isolated grading engine behind
/// [`grade_faults_with`]: lane-packed Monte Carlo grading with
/// checkpoint journaling, panic quarantine, and watchdog reporting.
///
/// Per pack (a chunk of [`MAX_PARALLEL_FAULTS`] faults + the baseline
/// lane):
///
/// * **journal hit** — the pack's estimations (or its quarantine
///   verdict) are restored verbatim from `journal` and the simulation
///   is skipped ([`ProgressEvent::PackRestored`]); because journaled
///   payloads are the bit-exact `f64` words of the original run, a
///   resumed study is bit-identical to an uninterrupted one;
/// * **panic** — the pack is retried once, then quarantined
///   ([`GradeIncident::QuarantinedPack`],
///   [`ProgressEvent::PackQuarantined`]) without poisoning the study;
/// * **watchdog** — a fault whose lane misses HOLD while lane 0
///   completes a run is reported as
///   [`GradeIncident::BudgetExhausted`] (its grade is still emitted,
///   measured over [`RunConfig::run_ceiling`]-bounded runs).
///
/// Completed packs are recorded to `journal` as they finish, so a kill
/// at any instant loses at most the packs still in flight.
///
/// # Panics
///
/// If pack 0 — the pack that carries the fault-free baseline on lane
/// 0 — quarantines, a baseline-only rescue estimation runs (itself
/// retried once); if that also panics the study cannot produce any
/// percentage change and the function panics with the payload message.
pub fn grade_faults_journaled(
    sys: &System,
    faults: &[StuckAt],
    cfg: &GradeConfig,
    threads: usize,
    progress: &dyn Progress,
    journal: Option<&CampaignJournal>,
) -> GradeReport {
    grade_faults_journaled_with_kernel(
        sys,
        faults,
        cfg,
        threads,
        progress,
        journal,
        SimKernel::Interpretive,
    )
}

/// Tape-kernel shape counters the always-on self-profiler captures per
/// computed pack: program size, levelized depth, baked-in force ops,
/// and the delta sweep's dirty-column count from the final batch. All
/// zeros under the interpretive kernel, which compiles no tape. Pure
/// diagnostics — never journaled, never fingerprinted.
#[derive(Debug, Default, Clone, Copy)]
struct PackProf {
    ops: usize,
    levels: usize,
    force_ops: usize,
    lanes: usize,
    dirty_nets: usize,
    nets: usize,
}

/// One pack's Monte Carlo estimation on a tape kernel: the pack's
/// [`TapeProgram`] is compiled once and one [`TapeSim`] is reused by
/// every batch — compile and allocation costs are paid once per pack
/// while every batch runs on the flat tape.
fn run_pack_tape<W: TapeWord>(
    sys: &System,
    pack: &[StuckAt],
    cfg: &GradeConfig,
    stalls: &mut [u64],
    cycles: &mut u64,
    prof: &mut PackProf,
) -> Vec<MonteCarloResult> {
    let prog =
        TapeProgram::<W>::compile(&sys.netlist, pack).expect("packs never exceed the lane limit");
    let mut sim = TapeSim::new(&prog);
    let results = run_monte_carlo_lanes(&cfg.mc, pack.len() + 1, |batch| {
        let ts = batch_testset(sys, cfg, batch);
        let (reports, batch_stalls) = measure_power_tape_watched_with(sys, &mut sim, &ts, cfg);
        for (acc, w) in stalls.iter_mut().zip(&batch_stalls) {
            *acc |= *w;
        }
        *cycles += reports[0].cycles;
        reports
    });
    *prof = PackProf {
        ops: prog.len(),
        levels: prog.level_count(),
        force_ops: prog.force_op_count(),
        lanes: prog.lanes(),
        dirty_nets: sim.activity().map_or(0, |a| a.dirty_net_columns()),
        nets: prog.net_count(),
    };
    results
}

/// Lane capacity of one grade pack under `kernel` — the number of
/// faults that share a simulation pass with the fault-free baseline on
/// lane 0. This is the unit of work a distributed campaign hands out:
/// pack `p` covers `faults[p*cap .. (p+1)*cap]`.
pub fn grade_pack_capacity(kernel: SimKernel) -> usize {
    match kernel {
        SimKernel::Interpretive | SimKernel::Tape => MAX_PARALLEL_FAULTS,
        SimKernel::TapeWide => MAX_WIDE_FAULTS,
    }
}

/// Number of grade packs `n_faults` faults occupy under `kernel`.
/// Pack 0 always exists — with no faults to grade it still carries the
/// fault-free baseline on lane 0.
pub fn grade_pack_count(n_faults: usize, kernel: SimKernel) -> usize {
    n_faults.div_ceil(grade_pack_capacity(kernel)).max(1)
}

/// The fault slice of pack `pack` under `kernel` (empty for the
/// baseline-only pack 0 of an empty fault universe, and for any pack
/// index past the end).
pub fn grade_pack_slice(faults: &[StuckAt], pack: usize, kernel: SimKernel) -> &[StuckAt] {
    let cap = grade_pack_capacity(kernel);
    let lo = pack.saturating_mul(cap).min(faults.len());
    let hi = pack.saturating_add(1).saturating_mul(cap).min(faults.len());
    &faults[lo..hi]
}

/// One pack's full Monte Carlo estimation on `kernel`: per-lane results
/// (lane 0 fault-free first), the accumulated watchdog stall mask, the
/// simulated cycle count, and the self-profiler's tape shape counters.
/// The first three are a pure function of `(sys, pack, cfg, kernel)` —
/// every caller (local grading, a remote shard worker) produces
/// bit-identical words for the same pack; the profile is diagnostic
/// only and never enters a payload or journal.
fn run_pack(
    sys: &System,
    pack: &[StuckAt],
    cfg: &GradeConfig,
    kernel: SimKernel,
) -> (Vec<MonteCarloResult>, Vec<u64>, u64, PackProf) {
    let mut stalls = vec![0u64; pack.len().div_ceil(64).max(1)];
    let mut cycles = 0u64;
    let mut prof = PackProf {
        lanes: pack.len() + 1,
        ..PackProf::default()
    };
    let results = match kernel {
        SimKernel::Interpretive => run_monte_carlo_lanes(&cfg.mc, pack.len() + 1, |batch| {
            let (reports, batch_stalls) =
                mc_batch_lanes(sys, pack, cfg, batch).expect("packs never exceed the lane limit");
            stalls[0] |= batch_stalls;
            // All lanes share one schedule; lane 0's cycle count is
            // the pack's per-batch simulation cost.
            cycles += reports[0].cycles;
            reports
        }),
        SimKernel::Tape => {
            run_pack_tape::<u64>(sys, pack, cfg, &mut stalls, &mut cycles, &mut prof)
        }
        SimKernel::TapeWide => {
            run_pack_tape::<W256>(sys, pack, cfg, &mut stalls, &mut cycles, &mut prof)
        }
    };
    (results, stalls, cycles, prof)
}

/// Computes pack `pack` of `faults` exactly as
/// [`grade_faults_journaled_with_kernel`] would and returns the journal
/// payload words — the byte-exact [`RecordKind::GradePack`] record a
/// shard coordinator merges via [`CampaignJournal::record`]. Panics in
/// the simulation are retried once and then normalized into a
/// quarantine payload, mirroring the local path, so a remote worker
/// reports a poisoned pack instead of crashing the campaign.
pub fn compute_pack_payload(
    sys: &System,
    faults: &[StuckAt],
    pack: usize,
    cfg: &GradeConfig,
    kernel: SimKernel,
) -> Vec<u64> {
    let slice = grade_pack_slice(faults, pack, kernel);
    let wide = grade_pack_capacity(kernel) > MAX_PARALLEL_FAULTS;
    let outcome = par_map_indexed_caught(1, 1, |_| run_pack(sys, slice, cfg, kernel))
        .into_iter()
        .next()
        .expect("one task was submitted");
    match outcome {
        Ok((results, stalls, _cycles, _prof)) => encode_pack(&results, &stalls, wide),
        Err(panic) => encode_quarantine(&panic.message),
    }
}

/// Coordinator-side shape check for a pack payload received over the
/// wire: `true` iff `words` decode as a computed or quarantined record
/// for pack `pack` of `faults` under `kernel`. Recording an arbitrary
/// payload would poison the journal with an undecodable (or worse,
/// wrong-shaped-but-decodable) record, so garbage from a confused
/// worker is rejected before it reaches the merge path.
pub fn validate_pack_payload(
    words: &[u64],
    faults: &[StuckAt],
    pack: usize,
    kernel: SimKernel,
) -> bool {
    let slice = grade_pack_slice(faults, pack, kernel);
    let wide = grade_pack_capacity(kernel) > MAX_PARALLEL_FAULTS;
    decode_pack(words, slice.len() + 1, wide).is_some()
}

/// [`grade_faults_journaled`] with an explicit simulation kernel.
///
/// The kernel selects both the per-batch simulator and the pack width:
///
/// * [`SimKernel::Interpretive`] — the dispatching
///   [`ParallelFaultSim`], packs of [`MAX_PARALLEL_FAULTS`];
/// * [`SimKernel::Tape`] — the compiled 64-bit op tape, same pack
///   width. Pack boundaries, sample streams and per-lane activity are
///   identical to the interpretive path, so grades, progress streams
///   and journal records are all byte-identical to it;
/// * [`SimKernel::TapeWide`] — the 256-bit op tape, packs of
///   [`MAX_WIDE_FAULTS`]. Each lane's Monte Carlo estimation is still
///   the serial stopping rule replayed on that lane's own sample
///   prefix, so every grade is byte-identical to the other kernels —
///   only pack-granular accounting (pack counts, per-pack journal
///   records and trace records) reflects the wider packing.
///
/// Journal compatibility follows the same split: interpretive and tape
/// runs restore each other's [`PACK_OK`] records verbatim, while wide
/// records use the distinct [`PACK_OK_WIDE`] tag so a resume that
/// switches pack width recomputes instead of pairing cached lanes with
/// the wrong faults.
#[allow(clippy::too_many_arguments)]
pub fn grade_faults_journaled_with_kernel(
    sys: &System,
    faults: &[StuckAt],
    cfg: &GradeConfig,
    threads: usize,
    progress: &dyn Progress,
    journal: Option<&CampaignJournal>,
    kernel: SimKernel,
) -> GradeReport {
    let _timer = PhaseTimer::start(progress, Phase::Grade);
    let capacity = grade_pack_capacity(kernel);
    let wide = capacity > MAX_PARALLEL_FAULTS;
    // Pack 0 always exists — with no faults to grade it still carries
    // the baseline on lane 0.
    let packs: Vec<&[StuckAt]> = if faults.is_empty() {
        vec![&[]]
    } else {
        faults.chunks(capacity).collect()
    };
    progress.event(ProgressEvent::WorkPlanned {
        phase: Phase::Grade,
        items: packs.len(),
    });
    // Self-profiler side table, indexed by pack. Kept out of
    // `PackOutcome` so the journal payload format (and every
    // decode/restore path) stays untouched by profiling.
    let profiles: std::sync::Mutex<Vec<PackProf>> =
        std::sync::Mutex::new(vec![PackProf::default(); packs.len()]);
    let outcomes = par_map_indexed_caught(threads, packs.len(), |p| {
        let pack = packs[p];
        if let Some(j) = journal {
            if let Some(words) = j.get(RecordKind::GradePack, p as u64) {
                if let Some(outcome) = decode_pack(&words, pack.len() + 1, wide) {
                    return outcome;
                }
                // An undecodable payload (e.g. written by an older
                // format or at another pack width) falls through to
                // recomputation.
            }
        }
        // Cycle and wall-time accounting stays worker-local and is
        // flushed once per pack — the hot lane loop never observes it.
        let started = std::time::Instant::now();
        let (results, stalls, cycles, prof) = run_pack(sys, pack, cfg, kernel);
        if let Ok(mut table) = profiles.lock() {
            table[p] = prof;
        }
        if let Some(j) = journal {
            j.record(
                RecordKind::GradePack,
                p as u64,
                &encode_pack(&results, &stalls, wide),
            );
        }
        PackOutcome::Computed {
            results,
            stalls,
            restored: false,
            cycles,
            elapsed: started.elapsed(),
        }
    });

    // Normalize panics into quarantine outcomes and journal them, so a
    // resumed study replays the incident instead of re-panicking.
    let outcomes: Vec<PackOutcome> = outcomes
        .into_iter()
        .enumerate()
        .map(|(p, slot)| match slot {
            Ok(outcome) => outcome,
            Err(panic) => {
                if let Some(j) = journal {
                    j.record(
                        RecordKind::GradePack,
                        p as u64,
                        &encode_quarantine(&panic.message),
                    );
                }
                PackOutcome::Quarantined {
                    message: panic.message,
                }
            }
        })
        .collect();

    // Progress accounting, in deterministic pack order. Structured
    // records allocate (fault-id rendering), so they are only built
    // when a sink asked for them — the default path stays free.
    let tracing = progress.wants_records();
    for (p, outcome) in outcomes.iter().enumerate() {
        let n_faults = packs[p].len();
        match outcome {
            PackOutcome::Computed {
                results,
                stalls,
                restored,
                cycles,
                elapsed,
            } => {
                if *restored {
                    progress.event(ProgressEvent::PackRestored { faults: n_faults });
                } else {
                    // One MonteCarlo event per estimation: every pack's
                    // fault lanes, plus the shared baseline (lane 0)
                    // once, from pack 0.
                    for r in results.iter().skip(usize::from(p != 0)) {
                        progress.event(ProgressEvent::MonteCarlo {
                            batches: r.batches,
                            converged: r.converged,
                        });
                    }
                    progress.event(ProgressEvent::CyclesSimulated { cycles: *cycles });
                    progress.event(ProgressEvent::GradePack { faults: n_faults });
                    // Self-profiler flush, in the same deterministic
                    // pack order as every other event. Timings vary
                    // run to run, but the event *sequence* does not.
                    let prof = profiles.lock().map(|t| t[p]).unwrap_or_default();
                    progress.event(ProgressEvent::PackProfile {
                        us: u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX),
                        ops: prof.ops,
                        levels: prof.levels,
                        force_ops: prof.force_ops,
                        lanes: prof.lanes,
                        dirty_nets: prof.dirty_nets,
                        nets: prof.nets,
                    });
                }
                if tracing {
                    let lanes = results
                        .iter()
                        .enumerate()
                        .map(|(l, r)| LaneGrade {
                            fault: l.checked_sub(1).map(|i| packs[p][i].to_string()),
                            mean_uw: r.mean_uw,
                            half_width_uw: r.half_width_uw,
                            batches: r.batches,
                            converged: r.converged,
                        })
                        .collect();
                    let stalled = packs[p]
                        .iter()
                        .enumerate()
                        .filter(|(i, _)| stall_bit(stalls, *i))
                        .map(|(_, f)| f.to_string())
                        .collect();
                    progress.record(&TraceRecord::PackGraded {
                        pack: p,
                        lanes,
                        occupancy: results.len(),
                        cycles: *cycles,
                        stalled,
                        elapsed: *elapsed,
                        restored: *restored,
                    });
                }
            }
            PackOutcome::Quarantined { message } => {
                progress.event(ProgressEvent::PackQuarantined { faults: n_faults });
                if tracing {
                    progress.record(&TraceRecord::Quarantined {
                        kind: WorkKind::GradePack,
                        index: p,
                        fault_ids: packs[p].iter().map(StuckAt::to_string).collect(),
                        message: message.clone(),
                        journal_key: journal.map(|_| RecordKind::GradePack.key(p as u64)),
                    });
                }
            }
        }
    }

    // The baseline lives on lane 0 of pack 0; if that pack quarantined,
    // rescue the study with a baseline-only estimation.
    let baseline = match &outcomes[0] {
        PackOutcome::Computed { results, .. } => results[0],
        PackOutcome::Quarantined { message, .. } => {
            let rescue = par_map_indexed_caught(1, 1, |_| {
                run_monte_carlo_lanes(&cfg.mc, 1, |batch| {
                    let (reports, _) = mc_batch_lanes(sys, &[], cfg, batch)
                        .expect("the empty pack is always in range");
                    reports
                })[0]
            });
            match rescue.into_iter().next() {
                Some(Ok(mc)) => {
                    progress.event(ProgressEvent::MonteCarlo {
                        batches: mc.batches,
                        converged: mc.converged,
                    });
                    mc
                }
                _ => panic!(
                    "baseline pack quarantined and the baseline-only rescue also \
                     panicked: {message}"
                ),
            }
        }
    };

    let mut grades = Vec::with_capacity(faults.len());
    let mut incidents = Vec::new();
    for (p, (pack, outcome)) in packs.iter().zip(&outcomes).enumerate() {
        match outcome {
            PackOutcome::Computed {
                results, stalls, ..
            } => {
                for (i, &fault) in pack.iter().enumerate() {
                    let mc = results[i + 1];
                    let pct = 100.0 * (mc.mean_uw - baseline.mean_uw) / baseline.mean_uw;
                    let flagged = pct.abs() > cfg.threshold_pct;
                    progress.event(ProgressEvent::FaultGraded { flagged });
                    grades.push(PowerGrade {
                        fault,
                        mean_uw: mc.mean_uw,
                        pct_change: pct,
                        flagged,
                    });
                    if stall_bit(stalls, i) {
                        progress.event(ProgressEvent::BudgetExhausted);
                        if tracing {
                            progress.record(&TraceRecord::BudgetExhausted {
                                fault_id: fault.to_string(),
                                journal_key: journal.map(|_| RecordKind::GradePack.key(p as u64)),
                            });
                        }
                        incidents.push(GradeIncident::BudgetExhausted { fault });
                    }
                }
            }
            PackOutcome::Quarantined { message, .. } => {
                incidents.push(GradeIncident::QuarantinedPack {
                    pack: p,
                    faults: pack.to_vec(),
                    message: message.clone(),
                });
            }
        }
    }
    GradeReport {
        baseline,
        grades,
        incidents,
    }
}

/// The scalar reference grading path: one [`CycleSim`] pass per fault
/// per batch, exactly as the lane-packed [`grade_faults_with`] but
/// without fault packing.
///
/// Kept as the ground truth the lane-packed path is regression-tested
/// against (and as the baseline the `grade_throughput` bench measures
/// speedup over). The baseline estimation shards its *batches*; the
/// per-fault estimations shard across *faults*, each fault's Monte Carlo
/// loop running serially so its sample sequence — and hence every mean,
/// percentage, and flag — is byte-identical to the serial path at any
/// thread count.
pub fn grade_faults_scalar_with(
    sys: &System,
    faults: &[StuckAt],
    cfg: &GradeConfig,
    threads: usize,
    progress: &dyn Progress,
) -> (MonteCarloResult, Vec<PowerGrade>) {
    let _timer = PhaseTimer::start(progress, Phase::Grade);
    let baseline = measure_power_monte_carlo_par(sys, None, cfg, threads);
    progress.event(ProgressEvent::MonteCarlo {
        batches: baseline.batches,
        converged: baseline.converged,
    });
    let grades = par_map_indexed(threads, faults.len(), |i| {
        let fault = faults[i];
        let mc = measure_power_monte_carlo(sys, Some(fault), cfg);
        progress.event(ProgressEvent::MonteCarlo {
            batches: mc.batches,
            converged: mc.converged,
        });
        let pct = 100.0 * (mc.mean_uw - baseline.mean_uw) / baseline.mean_uw;
        let flagged = pct.abs() > cfg.threshold_pct;
        progress.event(ProgressEvent::FaultGraded { flagged });
        PowerGrade {
            fault,
            mean_uw: mc.mean_uw,
            pct_change: pct,
            flagged,
        }
    });
    (baseline, grades)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_system;

    fn quick_cfg() -> GradeConfig {
        GradeConfig {
            mc: MonteCarloConfig {
                rel_tolerance: 0.05,
                min_batches: 3,
                max_batches: 6,
            },
            patterns_per_batch: 60,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_power_is_positive_and_reproducible() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let a = measure_power_monte_carlo(&sys, None, &cfg);
        let b = measure_power_monte_carlo(&sys, None, &cfg);
        assert!(a.mean_uw > 0.0);
        assert_eq!(a.mean_uw, b.mean_uw, "deterministic seeds");
    }

    #[test]
    fn extra_load_fault_increases_power() {
        let sys = toy_system();
        let cfg = quick_cfg();
        // Force R3's load line stuck at 1 at the controller output: the
        // register clocks every cycle instead of once per run.
        let ld = sys.datapath.find_ctrl("LD_R3").unwrap();
        let net = sys.ctrl.output_nets[ld.0];
        let gate = sys.netlist.driver(net).expect("control nets are driven");
        let fault = StuckAt::output(gate, true);
        let base = measure_power_monte_carlo(&sys, None, &cfg);
        let faulty = measure_power_monte_carlo(&sys, Some(fault), &cfg);
        assert!(
            faulty.mean_uw > base.mean_uw,
            "extra loads must increase datapath power ({} vs {})",
            faulty.mean_uw,
            base.mean_uw
        );
    }

    #[test]
    fn testset_power_matches_run_model() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let ts = TestSet::pseudorandom(sys.pattern_width(), 120, 0x5EED).unwrap();
        let p = measure_power_with_testset(&sys, None, &ts, &cfg);
        assert!(p.total_uw > 0.0);
        assert!(p.cycles >= 100);
        assert!(p.clock_uw > 0.0, "registers clock at least once per run");
    }

    #[test]
    fn threaded_grading_is_byte_identical_to_serial() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let faults: Vec<StuckAt> = sys.controller_faults().into_iter().take(5).collect();
        let (base_s, grades_s) = grade_faults(&sys, &faults, &cfg);
        for threads in [2, 4, 8] {
            let (base_t, grades_t) = grade_faults_with(&sys, &faults, &cfg, threads, &NullProgress);
            assert_eq!(base_s, base_t, "baseline, threads = {threads}");
            assert_eq!(grades_s.len(), grades_t.len());
            for (s, t) in grades_s.iter().zip(&grades_t) {
                assert_eq!(s.fault, t.fault);
                assert_eq!(s.mean_uw, t.mean_uw, "threads = {threads}");
                assert_eq!(s.pct_change, t.pct_change, "threads = {threads}");
                assert_eq!(s.flagged, t.flagged);
            }
        }
    }

    #[test]
    fn grading_reports_progress_events() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let faults: Vec<StuckAt> = sys.controller_faults().into_iter().take(3).collect();
        let counters = sfr_exec::Counters::new();
        let _ = grade_faults_with(&sys, &faults, &cfg, 2, &counters);
        let snap = counters.snapshot();
        assert_eq!(snap.faults_graded, 3);
        // Baseline + one estimation per fault.
        assert_eq!(snap.mc_converged + snap.mc_capped, 4);
        // Three faults fit one lane pack.
        assert_eq!(snap.grade_packs, 1);
        assert_eq!(snap.grade_pack_faults, 3);
        assert!(snap.phase_times.iter().any(|(p, _)| *p == Phase::Grade));
    }

    #[test]
    fn lane_packed_grading_matches_scalar_reference() {
        // The bit-identity contract on genuine SFR faults (the only
        // faults the grading phase ever sees in the paper flow).
        let sys = toy_system();
        let cfg = quick_cfg();
        let ccfg = crate::ClassifyConfig {
            test_patterns: 200,
            ..Default::default()
        };
        let c = crate::classify_system(&sys, &ccfg);
        let faults: Vec<StuckAt> = c.sfr().map(|f| f.fault).collect();
        assert!(!faults.is_empty(), "toy system exposes SFR faults");
        let (base_s, grades_s) = grade_faults_scalar_with(&sys, &faults, &cfg, 1, &NullProgress);
        for threads in [1, 2, 8] {
            let (base_l, grades_l) = grade_faults_with(&sys, &faults, &cfg, threads, &NullProgress);
            assert_eq!(base_s, base_l, "baseline, threads = {threads}");
            assert_eq!(grades_s.len(), grades_l.len());
            for (s, l) in grades_s.iter().zip(&grades_l) {
                assert_eq!(s.fault, l.fault);
                assert_eq!(s.mean_uw, l.mean_uw, "threads = {threads}");
                assert_eq!(s.pct_change, l.pct_change, "threads = {threads}");
                assert_eq!(s.flagged, l.flagged);
            }
        }
    }

    #[test]
    fn lane_testset_measurement_matches_scalar() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let ts = TestSet::pseudorandom(sys.pattern_width(), 120, 0x5EED).unwrap();
        let ccfg = crate::ClassifyConfig {
            test_patterns: 200,
            ..Default::default()
        };
        let c = crate::classify_system(&sys, &ccfg);
        let faults: Vec<StuckAt> = c.sfr().map(|f| f.fault).take(10).collect();
        let reports = measure_power_lanes_with_testset(&sys, &faults, &ts, &cfg).unwrap();
        assert_eq!(reports.len(), faults.len() + 1);
        assert_eq!(
            reports[0],
            measure_power_with_testset(&sys, None, &ts, &cfg),
            "lane 0 = fault-free"
        );
        for (i, &f) in faults.iter().enumerate() {
            assert_eq!(
                reports[i + 1],
                measure_power_with_testset(&sys, Some(f), &ts, &cfg),
                "fault {f}"
            );
        }
    }

    #[test]
    fn tape_kernels_grade_byte_identically_to_interpretive() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let ccfg = crate::ClassifyConfig {
            test_patterns: 200,
            ..Default::default()
        };
        let c = crate::classify_system(&sys, &ccfg);
        let faults: Vec<StuckAt> = c.sfr().map(|f| f.fault).collect();
        assert!(!faults.is_empty(), "toy system exposes SFR faults");
        let (base_i, grades_i) = grade_faults(&sys, &faults, &cfg);
        for kernel in [SimKernel::Tape, SimKernel::TapeWide] {
            for threads in [1, 2, 8] {
                let (base_t, grades_t) =
                    grade_faults_with_kernel(&sys, &faults, &cfg, threads, &NullProgress, kernel);
                assert_eq!(base_i, base_t, "baseline, {kernel:?}, threads = {threads}");
                assert_eq!(grades_i.len(), grades_t.len());
                for (i, t) in grades_i.iter().zip(&grades_t) {
                    assert_eq!(i.fault, t.fault);
                    assert_eq!(i.mean_uw, t.mean_uw, "{kernel:?}, threads = {threads}");
                    assert_eq!(
                        i.pct_change, t.pct_change,
                        "{kernel:?}, threads = {threads}"
                    );
                    assert_eq!(i.flagged, t.flagged);
                }
            }
        }
    }

    #[test]
    fn tape_testset_measurement_matches_interpretive() {
        let sys = toy_system();
        let mut cfg = quick_cfg();
        cfg.run.cycle_budget = 64; // arm the watchdog on both paths
        let ts = TestSet::pseudorandom(sys.pattern_width(), 120, 0x5EED).unwrap();
        let faults: Vec<StuckAt> = sys.controller_faults().into_iter().take(10).collect();
        let (want, want_stalls) = measure_power_lanes_watched(&sys, &faults, &ts, &cfg).unwrap();
        let prog = TapeProgram::<u64>::compile(&sys.netlist, &faults).unwrap();
        let (got, got_stalls) = measure_power_tape_watched(&sys, &prog, &ts, &cfg);
        assert_eq!(want, got, "tape reports = interpretive reports");
        assert_eq!(vec![want_stalls], got_stalls, "same watchdog verdicts");
        let wprog = TapeProgram::<W256>::compile(&sys.netlist, &faults).unwrap();
        let (wgot, wstalls) = measure_power_tape_watched(&sys, &wprog, &ts, &cfg);
        assert_eq!(want, wgot, "wide tape reports = interpretive reports");
        assert_eq!(vec![want_stalls], wstalls);
    }

    #[test]
    fn wide_pack_payload_roundtrips_and_rejects_cross_width() {
        let results = vec![
            MonteCarloResult {
                mean_uw: 123.456,
                half_width_uw: 0.5,
                batches: 7,
                converged: true,
            },
            MonteCarloResult {
                mean_uw: 130.0,
                half_width_uw: 1.25,
                batches: 9,
                converged: false,
            },
        ];
        let stalls = vec![0b10, 0, 0, 1 << 63];
        let words = encode_pack(&results, &stalls, true);
        match decode_pack(&words, results.len(), true) {
            Some(PackOutcome::Computed {
                results: r,
                stalls: s,
                restored,
                ..
            }) => {
                assert_eq!(r.len(), 2);
                assert_eq!(r[0].mean_uw, results[0].mean_uw);
                assert_eq!(r[1].batches, 9);
                assert_eq!(s, stalls);
                assert!(restored);
            }
            _ => panic!("wide payload must roundtrip"),
        }
        // A wide record never restores into a narrow run, and vice
        // versa — the tag check forces recomputation.
        assert!(decode_pack(&words, results.len(), false).is_none());
        let narrow = encode_pack(&results, &stalls[..1], false);
        assert!(decode_pack(&narrow, results.len(), true).is_none());
        assert!(decode_pack(&narrow, results.len(), false).is_some());
    }

    #[test]
    fn empty_fault_list_still_yields_baseline() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let (base, grades) = grade_faults(&sys, &[], &cfg);
        assert!(base.mean_uw > 0.0);
        assert!(grades.is_empty());
        let scalar = measure_power_monte_carlo(&sys, None, &cfg);
        assert_eq!(base, scalar, "lane-0 baseline = scalar fault-free MC");
    }

    #[test]
    fn grading_flags_only_band_escapes() {
        let sys = toy_system();
        let cfg = quick_cfg();
        let ld = sys.datapath.find_ctrl("LD_R3").unwrap();
        let net = sys.ctrl.output_nets[ld.0];
        let gate = sys.netlist.driver(net).unwrap();
        let fault = StuckAt::output(gate, true);
        let (base, grades) = grade_faults(&sys, &[fault], &cfg);
        assert!(base.mean_uw > 0.0);
        assert_eq!(grades.len(), 1);
        let g = &grades[0];
        assert!(g.pct_change > 0.0);
        assert_eq!(g.flagged, g.pct_change.abs() > cfg.threshold_pct);
    }
}
