//! The SFR/SFI oracle: symbolic input-output equivalence of the faulty
//! and fault-free system.
//!
//! A fault is system-functionally *redundant* exactly when the pair's
//! I/O behaviour is unchanged for **all** input data (Section 2). For a
//! non-sequence-altering controller fault, the faulty system is the same
//! datapath driven by a per-state-substituted control word; running both
//! control traces over the symbolic RTL domain and comparing output
//! *expressions* decides equivalence:
//!
//! * identical expression ids ⇒ identical functions of the input data —
//!   a sound "redundant" verdict;
//! * different ids at an *observable* point ⇒ the computations differ
//!   structurally, which for the arithmetic in these datapaths means
//!   some input data exposes the difference — an "irredundant" verdict
//!   (cross-validated against gate-level fault simulation in tests).
//!
//! Observability follows the tester model: an output cycle whose
//! fault-free expression still contains an unknown (a boot value) is an
//! unusable comparison point — the golden simulation itself cannot say
//! what to expect there — so differences at such cycles do not count.
//! Status bits are compared only at loop-decision states, where the
//! controller actually samples them.

use sfr_faultsim::System;
use sfr_fsm::StateId;
use sfr_netlist::Logic;
use sfr_rtl::{DatapathSim, ExprId, InputId, RegId, SymbolicDomain};

/// Per-cycle `(outputs, statuses)` expression ids of one symbolic trace.
type TraceRows = Vec<(Vec<ExprId>, Vec<ExprId>)>;

/// Why the oracle called a fault irredundant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mismatch {
    /// A data output expression differed at an observable cycle.
    Output {
        /// Cycle within the trajectory.
        cycle: usize,
        /// Output port index.
        port: usize,
    },
    /// A status expression differed at a decision state — the faulty
    /// system's control flow depends differently on the data.
    Status {
        /// Cycle within the trajectory.
        cycle: usize,
        /// Status index.
        status: usize,
    },
}

/// The oracle's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Input-output equivalent on every checked trajectory: SFR.
    Redundant,
    /// A structural difference at an observable point: SFI.
    Irredundant(Mismatch),
}

/// Which loop iteration counts to exercise (trajectories with `k`
/// loop-backs for each `k` listed). Non-looping designs ignore this.
pub const LOOP_DEPTHS: [usize; 4] = [0, 1, 2, 3];

/// Hold-state cycles appended to each trajectory.
pub const HOLD_OBSERVE_CYCLES: usize = 3;

/// The canonical state trajectories for a system: RESET, the body
/// (repeated per loop depth), then HOLD observation cycles.
fn trajectories(sys: &System) -> Vec<Vec<StateId>> {
    let n = sys.meta.n_steps;
    match sys.meta.loop_spec {
        None => {
            let mut t = vec![sys.meta.reset_state()];
            t.extend((1..=n).map(|k| sys.meta.state_of_step(k)));
            t.extend(std::iter::repeat(sys.meta.hold_state()).take(HOLD_OBSERVE_CYCLES));
            vec![t]
        }
        Some(l) => {
            // Prologue once, then the loop region per depth.
            let prologue: Vec<StateId> =
                (1..l.back_to).map(|k| sys.meta.state_of_step(k)).collect();
            let region: Vec<StateId> = (l.back_to..=n).map(|k| sys.meta.state_of_step(k)).collect();
            LOOP_DEPTHS
                .iter()
                .map(|&d| {
                    let mut t = vec![sys.meta.reset_state()];
                    t.extend(&prologue);
                    for _ in 0..=d {
                        t.extend(&region);
                    }
                    t.extend(std::iter::repeat(sys.meta.hold_state()).take(HOLD_OBSERVE_CYCLES));
                    t
                })
                .collect()
        }
    }
}

/// Runs one symbolic trace along `trajectory` using the given per-state
/// output table, returning per-cycle `(outputs, statuses)` expression
/// ids and the (moved-through) domain.
fn run_trace(
    sys: &System,
    domain: SymbolicDomain,
    trajectory: &[StateId],
    table: &[Vec<bool>],
) -> (TraceRows, SymbolicDomain) {
    let dp = &sys.datapath;
    let mut sim = DatapathSim::new(dp, domain);
    // Boot values: the same named unknown per register in every trace.
    for r in 0..dp.registers().len() {
        let boot = sim.domain_mut().named_unknown(r as u32);
        sim.set_reg(RegId(r), boot);
    }
    let mut rows = Vec::with_capacity(trajectory.len());
    for (t, &st) in trajectory.iter().enumerate() {
        let word: Vec<Logic> = table[st.0].iter().map(|&b| Logic::from_bool(b)).collect();
        let inputs: Vec<ExprId> = (0..dp.inputs().len())
            .map(|p| sim.domain_mut().input(InputId(p), t as u64))
            .collect();
        let r = sim.step(&word, &inputs);
        rows.push((r.outputs, r.statuses));
    }
    (rows, sim.into_domain())
}

/// Decides SFR vs SFI for a non-sequence-altering controller fault given
/// its faulty realized output table.
///
/// # Panics
///
/// Panics if `faulty_table` has the wrong shape.
pub fn judge(sys: &System, faulty_table: &[Vec<bool>]) -> Verdict {
    assert_eq!(faulty_table.len(), sys.fsm.spec().state_count());
    let golden_table = &sys.ctrl.realized_outputs;
    let decision_state = sys
        .meta
        .loop_spec
        .map(|_| sys.meta.state_of_step(sys.meta.n_steps));

    for trajectory in trajectories(sys) {
        let domain = SymbolicDomain::new(sys.datapath.width());
        let (golden_rows, domain) = run_trace(sys, domain, &trajectory, golden_table);
        let (faulty_rows, domain) = run_trace(sys, domain, &trajectory, faulty_table);
        for (cycle, ((go, gs), (fo, fs))) in golden_rows.iter().zip(&faulty_rows).enumerate() {
            for (port, (a, b)) in go.iter().zip(fo).enumerate() {
                if a != b && !domain.contains_unknown(*a) {
                    return Verdict::Irredundant(Mismatch::Output { cycle, port });
                }
            }
            if Some(trajectory[cycle]) == decision_state {
                for (status, (a, b)) in gs.iter().zip(fs).enumerate() {
                    if a != b && !domain.contains_unknown(*a) {
                        return Verdict::Irredundant(Mismatch::Status { cycle, status });
                    }
                }
            }
        }
    }
    Verdict::Redundant
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_system;

    #[test]
    fn golden_table_judged_redundant_against_itself() {
        let sys = toy_system();
        let v = judge(&sys, &sys.ctrl.realized_outputs);
        assert_eq!(v, Verdict::Redundant);
    }

    #[test]
    fn skipped_load_is_irredundant() {
        let sys = toy_system();
        let mut table = sys.ctrl.realized_outputs.clone();
        // Clear the output register R4's load in CS3 (its only load).
        let ld = sys.datapath.find_ctrl("LD_R4").unwrap();
        let cs3 = sys.meta.state_of_step(3);
        assert!(table[cs3.0][ld.0]);
        table[cs3.0][ld.0] = false;
        assert!(matches!(judge(&sys, &table), Verdict::Irredundant(_)));
    }

    #[test]
    fn extra_load_that_gets_overwritten_is_redundant() {
        let sys = toy_system();
        let mut table = sys.ctrl.realized_outputs.clone();
        // R3 (t) loads in CS2; an extra load in CS1 writes MUL of boot
        // values, overwritten in CS2 before the CS3 read: harmless.
        let ld = sys.datapath.find_ctrl("LD_R3").unwrap();
        let cs1 = sys.meta.state_of_step(1);
        assert!(!table[cs1.0][ld.0]);
        table[cs1.0][ld.0] = true;
        assert_eq!(judge(&sys, &table), Verdict::Redundant);
    }

    #[test]
    fn extra_load_rewriting_same_value_is_redundant() {
        let sys = toy_system();
        let mut table = sys.ctrl.realized_outputs.clone();
        // R4 (s) loads ADD(R3, R1) in CS3; an extra load in HOLD re-loads
        // ADD(R3, R1) — R3 and R1 are unchanged in HOLD, so the same
        // expression is rewritten (the paper's "rewrite a variable
        // unchanged" case, like its fault 21).
        let ld = sys.datapath.find_ctrl("LD_R4").unwrap();
        let hold = sys.meta.hold_state();
        table[hold.0][ld.0] = true;
        assert_eq!(judge(&sys, &table), Verdict::Redundant);
    }

    #[test]
    fn extra_load_clobbering_a_live_register_is_irredundant() {
        let sys = toy_system();
        let mut table = sys.ctrl.realized_outputs.clone();
        // R1 (va) is live in CS2 (read at CS3). An extra load in CS2
        // overwrites it with the sampled port value of that cycle, which
        // differs from the CS1 sample for some data.
        let ld = sys.datapath.find_ctrl("LD_R1").unwrap();
        let cs2 = sys.meta.state_of_step(2);
        assert!(!table[cs2.0][ld.0]);
        table[cs2.0][ld.0] = true;
        assert!(matches!(judge(&sys, &table), Verdict::Irredundant(_)));
    }

    #[test]
    fn extra_load_in_reset_is_redundant() {
        let sys = toy_system();
        let mut table = sys.ctrl.realized_outputs.clone();
        // Loading R3 during RESET writes garbage that CS2 overwrites.
        let ld = sys.datapath.find_ctrl("LD_R3").unwrap();
        let reset = sys.meta.reset_state();
        table[reset.0][ld.0] = true;
        assert_eq!(judge(&sys, &table), Verdict::Redundant);
    }
}
