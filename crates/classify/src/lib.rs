//! Controller fault taxonomy and power-based detection — the paper's
//! primary contribution.
//!
//! Stuck-at faults inside the controller of an integrated
//! controller–datapath pair fall into three classes (paper Figure 2):
//! **CFR** (never change the controller's behaviour), **SFI** (change the
//! pair's I/O behaviour for some data — catchable by an integrated
//! test), and **SFR** — faults that change control lines yet never the
//! system's I/O behaviour. SFR faults are undetectable by *any*
//! output-comparison test; their signature is analog: a change in
//! dynamic power.
//!
//! This crate implements:
//!
//! * the four-step classification methodology
//!   ([`classify_system`]) — fault simulation, "potentially detected"
//!   resolution, exhaustive controller-table analysis
//!   ([`analyze_controller_fault`]) and a symbolic input–output
//!   equivalence [oracle](judge);
//! * the Section 3 structural [rule engine](judge_by_rules) over
//!   [control line effects](ControlLineEffect) (active/inactive selects,
//!   skipped/extra loads, lifespan disruption);
//! * power [grading](grade_faults) of SFR faults by Monte Carlo
//!   simulation with a tolerance-band detector (the paper's ±5%).
//!
//! # Example
//!
//! ```
//! use sfr_classify::{classify_system, ClassifyConfig};
//! use sfr_faultsim::{System, SystemConfig};
//! use sfr_hls::{emit, BindingBuilder, DesignBuilder, Rhs};
//! use sfr_rtl::FuOp;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut d = DesignBuilder::new("sum", 4, 2);
//! let pa = d.port("a");
//! let pb = d.port("b");
//! let va = d.var("va");
//! let vs = d.var("sum");
//! d.sample(1, va, Rhs::Port(pa));
//! let add = d.compute(2, vs, FuOp::Add, Rhs::Var(va), Rhs::Port(pb));
//! d.output("sum_out", vs);
//! let design = d.finish()?;
//! let mut b = BindingBuilder::new(&design);
//! b.bind(va, "R1").bind(vs, "R2").bind_op(add, "ADD1");
//! let sys = System::build(&emit(&design, &b.finish()?)?, SystemConfig::default())?;
//!
//! let cfg = ClassifyConfig { test_patterns: 200, ..Default::default() };
//! let c = classify_system(&sys, &cfg);
//! assert_eq!(c.total(), sys.controller_faults().len());
//! assert_eq!(c.cfr_count() + c.sfr_count() + c.sfi_count(), c.total());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod grade;
mod oracle;
mod pipeline;
mod rules;
mod table;
#[cfg(test)]
mod testutil;

pub use grade::{
    compute_pack_payload, grade_faults, grade_faults_journaled, grade_faults_journaled_with_kernel,
    grade_faults_scalar_with, grade_faults_with, grade_faults_with_kernel, grade_pack_capacity,
    grade_pack_count, grade_pack_slice, measure_power_lanes_watched,
    measure_power_lanes_with_testset, measure_power_monte_carlo, measure_power_monte_carlo_par,
    measure_power_tape_watched, measure_power_tape_watched_with, measure_power_with_testset,
    validate_pack_payload, GradeConfig, GradeIncident, GradeReport, PowerGrade,
};
pub use oracle::{judge, Mismatch, Verdict, HOLD_OBSERVE_CYCLES, LOOP_DEPTHS};
pub use pipeline::{
    classify_system, classify_system_collapsed, classify_system_journaled, classify_system_with,
    collapse_grading_set, static_rule_label, Classification, ClassifiedFault, ClassifyConfig,
    FaultClass, SfiReason,
};
pub use rules::{classify_effect, judge_by_rules, EffectClass, RuleVerdict};
pub use table::{analyze_controller_fault, ControlLineEffect, ControllerBehavior};
