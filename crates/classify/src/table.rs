//! Exhaustive controller-table analysis of a faulty controller.
//!
//! Steps 3 of the paper's methodology: "inject the fault into the
//! controller and simulate the controller to determine the fault's
//! effect on the controller outputs". Because the controller is a small
//! FSM, we do better than sampling — for *every* (state, status) pair we
//! compare the faulty controller's outputs and next state against the
//! fault-free machine. A fault that never changes either is
//! controller-functionally redundant (CFR); one that changes outputs but
//! never next-state is a pure bundle of *control line effects* (the
//! objects Section 3 analyzes); one that changes next-state is
//! sequence-altering.

use sfr_faultsim::System;
use sfr_fsm::StateId;
use sfr_netlist::{CycleSim, Logic, StuckAt};

/// A change in a single control line in a single control step — the
/// paper's *control line effect* (Section 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlLineEffect {
    /// The state (control step) in which the line changes.
    pub state: StateId,
    /// The control line index (into the datapath control word).
    pub line: usize,
    /// The fault-free value.
    pub fault_free: bool,
    /// The faulty value.
    pub faulty: bool,
}

/// The complete behavioural fingerprint of a controller fault.
#[derive(Debug, Clone)]
pub struct ControllerBehavior {
    /// The fault.
    pub fault: StuckAt,
    /// All control line effects, over reachable states.
    pub effects: Vec<ControlLineEffect>,
    /// Whether any reachable (state, status) pair transitions to a
    /// different next state under the fault.
    pub sequence_altering: bool,
    /// The faulty realized output table (per state, per line), valid for
    /// non-sequence-altering faults.
    pub faulty_outputs: Vec<Vec<bool>>,
}

impl ControllerBehavior {
    /// Whether the fault is controller-functionally redundant: no output
    /// change and no next-state change anywhere reachable.
    pub fn is_cfr(&self) -> bool {
        self.effects.is_empty() && !self.sequence_altering
    }
}

/// Analyzes one controller fault exhaustively.
///
/// `fault` must be expressed in the coordinates of
/// [`System::ctrl_netlist`] (use [`System::fault_to_standalone`]).
///
/// For every specification state and every status assignment, the
/// standalone controller netlist is evaluated with the fault injected;
/// settled control outputs and the next-state code (read at the state
/// flip-flops after a clock) are compared with the fault-free machine.
///
/// # Panics
///
/// Panics if the faulty controller produces an `X` output or state bit —
/// impossible for stuck-at faults on a fully-specified netlist with
/// known inputs, so it indicates an internal error.
pub fn analyze_controller_fault(sys: &System, fault: StuckAt) -> ControllerBehavior {
    let nl = &sys.ctrl_netlist;
    let ctrl = &sys.ctrl_standalone;
    let spec = sys.fsm.spec();
    let n_status = spec.n_status();
    let mut sim = CycleSim::with_fault(nl, fault);

    let mut effects = Vec::new();
    let mut seen_effect = vec![[false; 2]; 0];
    seen_effect.resize(spec.state_count() * spec.control_width(), [false; 2]);
    let mut sequence_altering = false;
    let mut faulty_outputs = vec![vec![false; spec.control_width()]; spec.state_count()];

    for s in spec.states() {
        let code = sys.fsm.code(s);
        for status in 0..(1u32 << n_status) {
            // Load the state and apply the status.
            for (k, &g) in ctrl.state_gates.iter().enumerate() {
                sim.set_state(g, Logic::from_bool(code >> k & 1 == 1));
            }
            let status_bits: Vec<Logic> = (0..n_status)
                .map(|i| Logic::from_bool(status >> i & 1 == 1))
                .collect();
            sim.set_inputs(&status_bits);
            sim.eval();

            // Outputs (Moore: status-independent, but verify across all
            // status values anyway — a fault can break Moore-ness only
            // via paths from status inputs, which would surface here).
            for (j, &net) in ctrl.output_nets.iter().enumerate() {
                let got = sim
                    .value(net)
                    .to_bool()
                    .expect("faulty controller output must be known");
                faulty_outputs[s.0][j] = got;
                let want = sys.ctrl.realized_outputs[s.0][j];
                if got != want {
                    let slot = &mut seen_effect[s.0 * spec.control_width() + j];
                    if !slot[usize::from(got)] {
                        slot[usize::from(got)] = true;
                        effects.push(ControlLineEffect {
                            state: s,
                            line: j,
                            fault_free: want,
                            faulty: got,
                        });
                    }
                }
            }

            // Next state.
            sim.clock();
            let mut next_code = 0u32;
            for (k, &g) in ctrl.state_gates.iter().enumerate() {
                match sim.state(g) {
                    Logic::One => next_code |= 1 << k,
                    Logic::Zero => {}
                    Logic::X => panic!("faulty controller state bit unknown"),
                }
            }
            let want_next = sys.fsm.code(spec.next_state(s, status));
            if next_code != want_next {
                sequence_altering = true;
            }
        }
    }

    ControllerBehavior {
        fault,
        effects,
        sequence_altering,
        faulty_outputs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::toy_system;
    use sfr_netlist::FaultSite;

    #[test]
    fn fault_free_table_reproduces_realized_outputs() {
        // Use a fault that cannot matter: there is none by construction,
        // so instead check a real fault's faulty table differs from the
        // golden only where effects are reported.
        let sys = toy_system();
        for f in sys.controller_faults().into_iter().take(12) {
            let sf = sys.fault_to_standalone(f).unwrap();
            let b = analyze_controller_fault(&sys, sf);
            for s in sys.fsm.spec().states() {
                for j in 0..sys.fsm.spec().control_width() {
                    let golden = sys.ctrl.realized_outputs[s.0][j];
                    let faulty = b.faulty_outputs[s.0][j];
                    let reported = b.effects.iter().any(|e| e.state == s && e.line == j);
                    assert_eq!(
                        golden != faulty,
                        reported,
                        "fault {sf} state {s:?} line {j}"
                    );
                }
            }
        }
    }

    #[test]
    fn some_faults_are_sequence_altering() {
        let sys = toy_system();
        let behaviors: Vec<ControllerBehavior> = sys
            .controller_faults()
            .into_iter()
            .map(|f| analyze_controller_fault(&sys, sys.fault_to_standalone(f).unwrap()))
            .collect();
        assert!(behaviors.iter().any(|b| b.sequence_altering));
        assert!(behaviors.iter().any(|b| !b.effects.is_empty()));
    }

    #[test]
    fn minimized_controller_has_no_cfr_faults() {
        // The paper: "our example circuits did not contain any CFR
        // faults; the synthesis method did not allow redundancy." Exact
        // two-level minimization gives the same property here.
        let sys = toy_system();
        for f in sys.controller_faults() {
            let b = analyze_controller_fault(&sys, sys.fault_to_standalone(f).unwrap());
            assert!(!b.is_cfr(), "fault {f} is CFR in a minimized controller");
        }
    }

    #[test]
    fn redundant_controller_logic_yields_cfr_faults() {
        // The paper's synthesized controllers had no CFR faults, but the
        // class exists when the controller carries redundancy. Re-open
        // the standalone controller and add a *dangling* gate (a real
        // synthesis artefact: dead logic left by an ECO); faults confined
        // to it never change any output or next state — CFR.
        use sfr_netlist::{CellKind, NetlistBuilder};
        let mut sys = toy_system();
        let mut b = NetlistBuilder::from_netlist(&sys.ctrl_netlist);
        let probe = sys.ctrl_standalone.state_nets[0];
        let dangling = b.gate_net(CellKind::Inv, "dead_inv", &[probe]);
        let _ = dangling;
        sys.ctrl_netlist = b.finish().expect("still valid");
        let dead_gate = sfr_netlist::GateId::from_index(sys.ctrl_netlist.gate_count() - 1);
        for stuck in [false, true] {
            let b = analyze_controller_fault(&sys, StuckAt::output(dead_gate, stuck));
            assert!(b.is_cfr(), "fault on dead logic must be CFR");
        }
        // And a fault on live logic in the same doctored netlist is not.
        let live = sys
            .controller_faults()
            .into_iter()
            .map(|f| sys.fault_to_standalone(f).unwrap())
            .next()
            .unwrap();
        let lb = analyze_controller_fault(&sys, live);
        let _ = lb; // any verdict is fine; the call must not panic
    }

    #[test]
    fn state_ff_output_fault_alters_sequence() {
        let sys = toy_system();
        // Pick the fault on the first state FF's output stuck at 1.
        let ff = sys.ctrl_standalone.state_gates[0];
        let f = StuckAt::output(ff, true);
        let b = analyze_controller_fault(&sys, f);
        assert!(b.sequence_altering || !b.effects.is_empty());
        match f.site {
            FaultSite::GateOutput { .. } => {}
            _ => unreachable!(),
        }
    }
}
