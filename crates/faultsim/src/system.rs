//! Full-system assembly: synthesized controller + elaborated datapath in
//! one gate-level netlist.
//!
//! The integrated test of the paper (Figure 1) treats the pair as an
//! indivisible unit: stimuli enter only at the datapath data inputs,
//! observation happens only at the datapath data outputs, and the
//! controller–datapath interface (control lines out, status bits back)
//! is internal. This module builds exactly that object, keeping the
//! controller's gates contiguous so its stuck-at fault universe — the
//! paper's — is a gate-index range.

use sfr_fsm::{synthesize_into, EncodedFsm, Encoding, FillPolicy, StateId, SynthesizedController};
use sfr_hls::{DesignMeta, EmittedSystem};
use sfr_netlist::{
    CellKind, CycleSim, GateId, Logic, NetId, Netlist, NetlistBuilder, NetlistError,
    ParallelFaultSim, Pat, StuckAt, TapeSim, TapeWord,
};
use sfr_rtl::{elaborate_into, Datapath, ElabNets};

/// Configuration of system construction.
#[derive(Debug, Clone, Copy)]
pub struct SystemConfig {
    /// Controller state encoding.
    pub encoding: Encoding,
    /// Don't-care fill policy for controller outputs.
    pub fill: FillPolicy,
}

impl Default for SystemConfig {
    /// Binary encoding with an *arbitrary* (seeded) don't-care fill —
    /// the paper's setting: the controller's don't-cares were committed
    /// by a synthesis flow "without taking power into account", leaving
    /// the slack that makes select-line SFR faults possible. Use
    /// [`FillPolicy::Synthesis`] to see what a modern exact flow does to
    /// that fault population (ablation bench `ablation_fill`).
    fn default() -> Self {
        SystemConfig {
            encoding: Encoding::default(),
            fill: FillPolicy::Arbitrary(0x5EED),
        }
    }
}

/// A complete controller–datapath pair at gate level.
#[derive(Debug, Clone)]
pub struct System {
    /// The merged netlist. Primary inputs: all data-input bits (port
    /// major, LSB first). Primary outputs: all data-output bits.
    pub netlist: Netlist,
    /// Controller handles (gate range, state FFs, control nets).
    pub ctrl: SynthesizedController,
    /// Datapath handles (register bits/gates, output and status nets).
    pub elab: ElabNets,
    /// The encoded controller (state codes, spec).
    pub fsm: EncodedFsm,
    /// The RTL view of the datapath (for symbolic/concrete co-analysis).
    pub datapath: Datapath,
    /// Schedule/binding metadata from HLS.
    pub meta: DesignMeta,
    /// Primary-input nets per data port.
    pub data_inputs: Vec<Vec<NetId>>,
    /// The configuration the system was built with.
    pub cfg: SystemConfig,
    /// A *standalone* copy of the controller (status bits as primary
    /// inputs, control word as primary outputs), structurally identical
    /// to the controller embedded in [`System::netlist`]: gate `i` of
    /// this netlist is gate `ctrl.gate_range.0 + i` of the system.
    /// Used for exhaustive controller-table analysis.
    pub ctrl_netlist: Netlist,
    /// Handles into [`System::ctrl_netlist`].
    pub ctrl_standalone: SynthesizedController,
}

impl System {
    /// Builds the integrated system from an emitted HLS result.
    ///
    /// # Errors
    ///
    /// Propagates netlist validation errors, which would indicate an
    /// internal bug in synthesis or elaboration.
    pub fn build(sys: &EmittedSystem, cfg: SystemConfig) -> Result<System, NetlistError> {
        let dp = &sys.datapath;
        let fsm = EncodedFsm::new(sys.fsm.clone(), cfg.encoding);
        let mut b = NetlistBuilder::new(format!("{}_sys", dp.name()));

        // Data-input primary inputs.
        let data_inputs: Vec<Vec<NetId>> = dp
            .inputs()
            .iter()
            .map(|p| {
                (0..dp.width())
                    .map(|i| b.input(format!("{}_{i}", p.name())))
                    .collect()
            })
            .collect();

        // Status indirection nets: the controller reads these; buffers
        // driven by the datapath's status sources close the loop after
        // elaboration. The buffers sit outside the controller gate range.
        let status_nets: Vec<NetId> = (0..dp.statuses().len())
            .map(|i| b.net(format!("status{i}")))
            .collect();

        // Controller first: contiguous gate range = fault universe.
        let ctrl = synthesize_into(&mut b, &fsm, &status_nets, cfg.fill, "ctl");

        // Datapath.
        let elab = elaborate_into(&mut b, dp, &data_inputs, &ctrl.output_nets);

        // Close the status loop.
        for (i, (&src, &dst)) in elab.status_bits.iter().zip(&status_nets).enumerate() {
            b.gate(CellKind::Buf, format!("status_buf{i}"), &[src], dst);
        }

        // Observability: data outputs only (integrated test).
        for port in &elab.output_bits {
            for &n in port {
                b.mark_output(n);
            }
        }

        let netlist = b.finish()?;

        // Structurally identical standalone controller for exhaustive
        // table analysis. Same synthesis inputs + same prefix ⇒ same
        // gates in the same order.
        let (ctrl_netlist, ctrl_standalone) = sfr_fsm::synthesize_standalone(&fsm, cfg.fill)?;
        debug_assert_eq!(
            ctrl_netlist.gate_count(),
            ctrl.gate_range.1 - ctrl.gate_range.0,
            "standalone controller must mirror the embedded one"
        );

        Ok(System {
            netlist,
            ctrl,
            elab,
            fsm,
            datapath: dp.clone(),
            meta: sys.meta.clone(),
            data_inputs,
            cfg,
            ctrl_netlist,
            ctrl_standalone,
        })
    }

    /// Translates a fault on the embedded controller into the equivalent
    /// fault on [`System::ctrl_netlist`] (returns `None` for faults
    /// outside the controller range).
    pub fn fault_to_standalone(&self, f: StuckAt) -> Option<StuckAt> {
        let lo = self.ctrl.gate_range.0;
        let remap = |g: GateId| -> Option<GateId> {
            self.is_controller_gate(g)
                .then(|| GateId::from_index(g.index() - lo))
        };
        Some(match f.site {
            sfr_netlist::FaultSite::GateInput { gate, pin } => {
                StuckAt::input(remap(gate)?, pin, f.stuck)
            }
            sfr_netlist::FaultSite::GateOutput { gate } => StuckAt::output(remap(gate)?, f.stuck),
            sfr_netlist::FaultSite::PrimaryInput { .. } => return None,
        })
    }

    /// The collapsed stuck-at fault universe of the controller — the
    /// paper's "faults within the controller".
    pub fn controller_faults(&self) -> Vec<StuckAt> {
        let all = StuckAt::enumerate_collapsed(&self.netlist);
        let (lo, hi) = self.ctrl.gate_range;
        if lo == hi {
            return Vec::new();
        }
        StuckAt::in_gate_range(&all, GateId::from_index(lo), GateId::from_index(hi - 1))
    }

    /// The complete (uncollapsed) controller fault universe.
    pub fn controller_faults_uncollapsed(&self) -> Vec<StuckAt> {
        let all = StuckAt::enumerate(&self.netlist);
        let (lo, hi) = self.ctrl.gate_range;
        if lo == hi {
            return Vec::new();
        }
        StuckAt::in_gate_range(&all, GateId::from_index(lo), GateId::from_index(hi - 1))
    }

    /// Applies the tester's reset: controller FFs take the reset state's
    /// code. Datapath registers are set to `datapath_init` ([`Logic::X`]
    /// models a real power-up; [`Logic::Zero`] gives the known baseline
    /// used for power measurement).
    pub fn reset_sim(&self, sim: &mut CycleSim<'_>, datapath_init: Logic) {
        let code = self.fsm.reset_code();
        for (k, &g) in self.ctrl.state_gates.iter().enumerate() {
            sim.set_state(g, Logic::from_bool(code >> k & 1 == 1));
        }
        for gates in &self.elab.reg_gates {
            for &g in gates {
                sim.set_state(g, datapath_init);
            }
        }
    }

    /// Resets all lanes of a parallel fault simulator the same way.
    ///
    /// Mirrors [`System::reset_sim`] field for field: only sequential
    /// *state* is overwritten (per gate, all lanes), never the
    /// simulator's activity baseline — so, like the scalar
    /// [`CycleSim::set_state`] path, the toggle edge between the last
    /// settled cycle of one run and the first of the next is counted.
    /// That keeps lane-packed power accounting bit-identical to the
    /// scalar measurement loop across run boundaries.
    pub fn reset_psim(&self, sim: &mut ParallelFaultSim<'_>, datapath_init: Logic) {
        let code = self.fsm.reset_code();
        for (k, &g) in self.ctrl.state_gates.iter().enumerate() {
            sim_set_state_all_lanes(sim, g, Logic::from_bool(code >> k & 1 == 1));
        }
        for gates in &self.elab.reg_gates {
            for &g in gates {
                sim_set_state_all_lanes(sim, g, datapath_init);
            }
        }
    }

    /// Resets all lanes of a compiled tape simulator the same way.
    ///
    /// Mirrors [`System::reset_psim`] field for field, so a tape pack's
    /// per-lane state after reset is bit-identical to the interpretive
    /// engine's.
    pub fn reset_tape<W: TapeWord>(&self, sim: &mut TapeSim<'_, W>, datapath_init: Logic) {
        let code = self.fsm.reset_code();
        for (k, &g) in self.ctrl.state_gates.iter().enumerate() {
            sim.set_gate_state(g, Pat::splat(Logic::from_bool(code >> k & 1 == 1)));
        }
        for gates in &self.elab.reg_gates {
            for &g in gates {
                sim.set_gate_state(g, Pat::splat(datapath_init));
            }
        }
    }

    /// Decodes the controller state in a cycle simulator, if it matches a
    /// known state code.
    pub fn decode_state(&self, sim: &CycleSim<'_>) -> Option<StateId> {
        let mut code = 0u32;
        for (k, &g) in self.ctrl.state_gates.iter().enumerate() {
            match sim.state(g) {
                Logic::One => code |= 1 << k,
                Logic::Zero => {}
                Logic::X => return None,
            }
        }
        self.fsm.decode(code)
    }

    /// Decodes the controller state carried by one lane of a parallel
    /// fault simulator, if it matches a known state code.
    ///
    /// Lane 0 is the fault-free controller; the grading loop uses it to
    /// steer run boundaries for a whole fault pack, which is sound
    /// because SFR faults never alter the controller's state sequence.
    pub fn decode_state_lane(&self, sim: &ParallelFaultSim<'_>, lane: usize) -> Option<StateId> {
        let mut code = 0u32;
        for (k, &g) in self.ctrl.state_gates.iter().enumerate() {
            match sim.gate_state(g).lane(lane) {
                Logic::One => code |= 1 << k,
                Logic::Zero => {}
                Logic::X => return None,
            }
        }
        self.fsm.decode(code)
    }

    /// Decodes the controller state carried by one lane of a compiled
    /// tape simulator, if it matches a known state code (the tape
    /// analogue of [`System::decode_state_lane`]).
    pub fn decode_state_tape_lane<W: TapeWord>(
        &self,
        sim: &TapeSim<'_, W>,
        lane: usize,
    ) -> Option<StateId> {
        let mut code = 0u32;
        for (k, &g) in self.ctrl.state_gates.iter().enumerate() {
            match sim.gate_state(g).lane(lane) {
                Logic::One => code |= 1 << k,
                Logic::Zero => {}
                Logic::X => return None,
            }
        }
        self.fsm.decode(code)
    }

    /// Applies one pattern word (all ports concatenated, port-major,
    /// LSB-first) to a cycle simulator's data inputs.
    pub fn apply_pattern(&self, sim: &mut CycleSim<'_>, pattern: u64) {
        let w = self.datapath.width();
        for (p, port) in self.data_inputs.iter().enumerate() {
            for (i, &net) in port.iter().enumerate() {
                let bit = pattern >> (p * w + i) & 1 == 1;
                sim.set_input(net, Logic::from_bool(bit));
            }
        }
    }

    /// Applies one pattern word to every lane of a parallel simulator.
    pub fn apply_pattern_parallel(&self, sim: &mut ParallelFaultSim<'_>, pattern: u64) {
        let w = self.datapath.width();
        for (p, port) in self.data_inputs.iter().enumerate() {
            for (i, &net) in port.iter().enumerate() {
                let bit = pattern >> (p * w + i) & 1 == 1;
                sim.set_input(net, Logic::from_bool(bit));
            }
        }
    }

    /// Applies one pattern word to every lane of a compiled tape
    /// simulator.
    pub fn apply_pattern_tape<W: TapeWord>(&self, sim: &mut TapeSim<'_, W>, pattern: u64) {
        let w = self.datapath.width();
        for (p, port) in self.data_inputs.iter().enumerate() {
            for (i, &net) in port.iter().enumerate() {
                let bit = pattern >> (p * w + i) & 1 == 1;
                sim.set_input(net, Logic::from_bool(bit));
            }
        }
    }

    /// Total pattern width in bits (ports × datapath width), the width a
    /// [`sfr_tpg::TestSet`] for this system must have.
    pub fn pattern_width(&self) -> usize {
        self.datapath.inputs().len() * self.datapath.width()
    }

    /// Whether a gate belongs to the controller.
    pub fn is_controller_gate(&self, g: GateId) -> bool {
        self.ctrl.contains_gate(g)
    }

    /// The fault-free length of one straight-line run under a
    /// `hold_cycles`-cycle observation tail: reset + every computation
    /// step + the HOLD entry cycle + the tail. This is the reference
    /// length watchdog budgets are expressed against (a looping design
    /// iterates body steps, so its real runs may legitimately exceed
    /// this; budget factors absorb that).
    pub fn nominal_run_cycles(&self, hold_cycles: usize) -> usize {
        self.meta.n_steps + 2 + hold_cycles
    }
}

/// Sets a sequential gate's state across all lanes of a parallel sim.
fn sim_set_state_all_lanes(sim: &mut ParallelFaultSim<'_>, gate: GateId, v: Logic) {
    sim.set_gate_state(gate, sfr_netlist::PatVec::splat(v));
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use sfr_netlist::logic_to_u64;

    pub(crate) use crate::fixtures::toy_system;

    #[test]
    fn system_builds_and_has_faults() {
        let sys = toy_system();
        assert!(sys.netlist.gate_count() > 50);
        let faults = sys.controller_faults();
        assert!(!faults.is_empty());
        assert!(faults.len() < sys.controller_faults_uncollapsed().len());
        assert_eq!(sys.pattern_width(), 8);
    }

    #[test]
    fn fault_free_system_computes_through_hold() {
        let sys = toy_system();
        let mut sim = CycleSim::new(&sys.netlist);
        sys.reset_sim(&mut sim, Logic::X);
        // a=3, b=4 → s = 15.
        let pattern = 3 | 4 << 4;
        let mut result = None;
        for _ in 0..8 {
            sys.apply_pattern(&mut sim, pattern);
            sim.eval();
            if sys.decode_state(&sim) == Some(sys.meta.hold_state()) {
                result = logic_to_u64(&sim.outputs());
                break;
            }
            sim.clock();
        }
        assert_eq!(result, Some(15));
    }

    #[test]
    fn state_decodes_through_the_run() {
        let sys = toy_system();
        let mut sim = CycleSim::new(&sys.netlist);
        sys.reset_sim(&mut sim, Logic::X);
        let mut states = Vec::new();
        for _ in 0..5 {
            sys.apply_pattern(&mut sim, 0);
            sim.eval();
            states.push(sys.decode_state(&sim).expect("decodable"));
            sim.clock();
        }
        let expect: Vec<StateId> = vec![
            sys.meta.reset_state(),
            sys.meta.state_of_step(1),
            sys.meta.state_of_step(2),
            sys.meta.state_of_step(3),
            sys.meta.hold_state(),
        ];
        assert_eq!(states, expect);
    }

    #[test]
    fn psim_reset_and_lane_decode_mirror_scalar() {
        let sys = toy_system();
        let mut sim = CycleSim::new(&sys.netlist);
        let mut psim = ParallelFaultSim::new(&sys.netlist, &[]).unwrap();
        sys.reset_sim(&mut sim, Logic::Zero);
        sys.reset_psim(&mut psim, Logic::Zero);
        // The per-gate reset paths must cover every sequential gate the
        // same way in both engines.
        for &g in sys.netlist.sequential_gates() {
            assert_eq!(psim.gate_state(g).lane(0), sim.state(g), "gate {g:?}");
        }
        for _ in 0..5 {
            sys.apply_pattern(&mut sim, 9);
            sys.apply_pattern_parallel(&mut psim, 9);
            sim.eval();
            psim.eval();
            assert_eq!(sys.decode_state_lane(&psim, 0), sys.decode_state(&sim));
            sim.clock();
            psim.clock();
        }
    }

    #[test]
    fn controller_fault_universe_excludes_datapath() {
        let sys = toy_system();
        for f in sys.controller_faults() {
            match f.site {
                sfr_netlist::FaultSite::GateInput { gate, .. }
                | sfr_netlist::FaultSite::GateOutput { gate } => {
                    assert!(sys.is_controller_gate(gate));
                }
                sfr_netlist::FaultSite::PrimaryInput { .. } => {
                    panic!("controller faults must not include system PIs")
                }
            }
        }
    }
}
