//! Small ready-made systems for tests, examples, and lint fixtures.
//!
//! These are not benchmarks — see `sfr-benchmarks` for the paper's
//! circuits. They exist so downstream crates (and this one's tests) can
//! exercise the full controller–datapath machinery on something that
//! builds in microseconds.

use crate::system::{System, SystemConfig};
use sfr_hls::{emit, BindingBuilder, DesignBuilder, Rhs};
use sfr_rtl::FuOp;

/// A three-step toy design: CS1 samples `a`, `b`; CS2 computes
/// `t = a * b`; CS3 computes `s = t + a`; `s` is the held output.
///
/// # Panics
///
/// Never panics: the design is statically valid.
pub fn toy_system() -> System {
    let mut d = DesignBuilder::new("toy", 4, 3);
    let pa = d.port("a");
    let pb = d.port("b");
    let va = d.var("va");
    let vb = d.var("vb");
    let t = d.var("t");
    let s = d.var("s");
    d.sample(1, va, Rhs::Port(pa));
    d.sample(1, vb, Rhs::Port(pb));
    let m = d.compute(2, t, FuOp::Mul, Rhs::Var(va), Rhs::Var(vb));
    let a = d.compute(3, s, FuOp::Add, Rhs::Var(t), Rhs::Var(va));
    d.output("s_out", s);
    let d = d.finish().expect("toy design is valid");
    let mut bb = BindingBuilder::new(&d);
    bb.bind(va, "R1")
        .bind(vb, "R2")
        .bind(t, "R3")
        .bind(s, "R4")
        .bind_op(m, "MUL1")
        .bind_op(a, "ADD1");
    let binding = bb.finish().expect("toy binding is valid");
    let sys = emit(&d, &binding).expect("toy design emits");
    System::build(&sys, SystemConfig::default()).expect("toy system builds")
}
