//! Integrated controller–datapath fault simulation.
//!
//! Builds the paper's test object — one gate-level netlist containing a
//! synthesized FSM controller and an elaborated datapath, observable
//! only at the datapath's data outputs ([`System`]) — and runs stuck-at
//! fault campaigns over the controller's fault universe against a
//! fault-free [`GoldenTrace`]. Both a serial engine ([`run_serial`]) and
//! an exact 63-fault-per-word parallel engine ([`run_parallel`]) are
//! provided; the "potentially detected" three-valued verdict of the
//! paper's GENTEST simulator is reproduced faithfully (see
//! [`Detection::Potential`]).
//!
//! # Example
//!
//! ```
//! use sfr_faultsim::{golden_trace, run_parallel, RunConfig, System, SystemConfig};
//! use sfr_hls::{emit, BindingBuilder, DesignBuilder, Rhs};
//! use sfr_rtl::FuOp;
//! use sfr_tpg::TestSet;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A two-step design: sample a; sum = a + b.
//! let mut d = DesignBuilder::new("sum", 4, 2);
//! let pa = d.port("a");
//! let pb = d.port("b");
//! let va = d.var("va");
//! let vs = d.var("sum");
//! d.sample(1, va, Rhs::Port(pa));
//! let add = d.compute(2, vs, FuOp::Add, Rhs::Var(va), Rhs::Port(pb));
//! d.output("sum_out", vs);
//! let design = d.finish()?;
//! let mut b = BindingBuilder::new(&design);
//! b.bind(va, "R1").bind(vs, "R2").bind_op(add, "ADD1");
//! let emitted = emit(&design, &b.finish()?)?;
//!
//! let sys = System::build(&emitted, SystemConfig::default())?;
//! let ts = TestSet::pseudorandom(sys.pattern_width(), 100, 0xACE1)?;
//! let golden = golden_trace(&sys, &ts, &RunConfig::default());
//! let outcomes = run_parallel(&sys, &golden, &sys.controller_faults());
//! let detected = outcomes.iter().filter(|o| o.detection.is_detected()).count();
//! assert!(detected > 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod campaign;
mod engine;
pub mod fixtures;
mod golden;
mod system;

pub use campaign::{run_parallel, run_serial, run_tape_counted, CampaignOutcome, Detection};
pub use engine::{
    run_campaign, run_campaign_quarantined, run_with, Engine, EngineKind, LaneEngine,
    QuarantinedChunk, SerialEngine, SimKernel, TapeEngine, TapeWideEngine, ThreadedEngine,
};
pub use golden::{golden_trace, GoldenTrace, RunConfig, RunSpec};
pub use system::{System, SystemConfig};
