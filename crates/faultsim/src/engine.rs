//! Selectable fault-simulation engines behind one trait.
//!
//! The three engines — [`SerialEngine`] (one fault at a time),
//! [`LaneEngine`] (63 faults per machine word), [`ThreadedEngine`]
//! (63-fault batches sharded across scoped worker threads) — produce
//! identical verdict vectors for the same inputs. The threaded engine
//! is outcome-identical to the lane engine *by construction*: batch
//! boundaries are fixed at [`MAX_PARALLEL_FAULTS`] regardless of thread
//! count, each batch is an independent simulation, and the executor
//! reassembles batch results in fault order.

use crate::campaign::{run_parallel, run_serial, CampaignOutcome};
use crate::golden::GoldenTrace;
use crate::system::System;
use sfr_exec::{par_map_indexed, NullProgress, Progress, ProgressEvent};
use sfr_netlist::{StuckAt, MAX_PARALLEL_FAULTS};

/// A fault-simulation engine: turns a fault list into a verdict per
/// fault, against one golden trace.
///
/// All engines must return outcomes in fault order and agree on every
/// verdict (see the equivalence tests); they differ only in wall-clock
/// time.
pub trait Engine: Sync {
    /// A short identifier for reports (`"serial"`, `"lane"`, …).
    fn name(&self) -> &'static str;

    /// Runs the campaign.
    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome>;

    /// The worker count this engine represents — downstream per-fault
    /// stages (controller-table analysis, the symbolic oracle) shard to
    /// the same width. 1 for the single-threaded engines.
    fn threads(&self) -> usize {
        1
    }
}

/// One fault at a time — the reference engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialEngine;

impl Engine for SerialEngine {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome> {
        run_serial(sys, golden, faults)
    }
}

/// 63 faults per machine word, single-threaded.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneEngine;

impl Engine for LaneEngine {
    fn name(&self) -> &'static str {
        "lane"
    }

    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome> {
        run_parallel(sys, golden, faults)
    }
}

/// 63-fault batches sharded across scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedEngine {
    threads: usize,
}

impl ThreadedEngine {
    /// An engine using `threads` workers (0 means the machine's
    /// available parallelism).
    pub fn new(threads: usize) -> Self {
        ThreadedEngine {
            threads: if threads == 0 {
                sfr_exec::default_threads()
            } else {
                threads
            },
        }
    }
}

impl Engine for ThreadedEngine {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome> {
        // Batch boundaries match the lane engine exactly; each batch is
        // an independent `run_parallel` call, so per-batch behaviour
        // (lane assignment, fault dropping) is untouched by sharding.
        let batches: Vec<&[StuckAt]> = faults.chunks(MAX_PARALLEL_FAULTS).collect();
        par_map_indexed(self.threads, batches.len(), |i| {
            run_parallel(sys, golden, batches[i])
        })
        .into_iter()
        .flatten()
        .collect()
    }
}

/// Which engine to run — the serializable selector the study API and
/// the CLI expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// [`SerialEngine`].
    Serial,
    /// [`LaneEngine`] (the single-threaded default).
    #[default]
    Lane,
    /// [`ThreadedEngine`] with the given worker count (0 = all cores).
    Threaded(usize),
}

impl EngineKind {
    /// Instantiates the selected engine.
    pub fn build(self) -> Box<dyn Engine> {
        match self {
            EngineKind::Serial => Box::new(SerialEngine),
            EngineKind::Lane => Box::new(LaneEngine),
            EngineKind::Threaded(n) => Box::new(ThreadedEngine::new(n)),
        }
    }

    /// The selector for a worker count: 0 or 1 workers degenerate to
    /// the lane engine (same outcomes, no thread overhead).
    pub fn for_threads(threads: usize) -> Self {
        if threads == 1 {
            EngineKind::Lane
        } else {
            EngineKind::Threaded(threads)
        }
    }
}

/// Runs a campaign on `engine`, reporting one
/// [`ProgressEvent::FaultSimulated`] per fault (a detected fault is
/// dropped from further phases).
pub fn run_campaign(
    engine: &dyn Engine,
    sys: &System,
    golden: &GoldenTrace,
    faults: &[StuckAt],
    progress: &dyn Progress,
) -> Vec<CampaignOutcome> {
    let outcomes = engine.run(sys, golden, faults);
    for o in &outcomes {
        progress.event(ProgressEvent::FaultSimulated {
            dropped: o.detection.is_detected(),
        });
    }
    outcomes
}

/// Convenience wrapper: campaign with no observer.
pub fn run_with(
    engine: &dyn Engine,
    sys: &System,
    golden: &GoldenTrace,
    faults: &[StuckAt],
) -> Vec<CampaignOutcome> {
    run_campaign(engine, sys, golden, faults, &NullProgress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{golden_trace, RunConfig};
    use crate::system::tests::toy_system;
    use sfr_tpg::TestSet;

    fn setup() -> (System, GoldenTrace, Vec<StuckAt>) {
        let sys = toy_system();
        let ts = TestSet::pseudorandom(sys.pattern_width(), 120, 0xACE1).unwrap();
        let golden = golden_trace(&sys, &ts, &RunConfig::default());
        let faults = sys.controller_faults();
        (sys, golden, faults)
    }

    #[test]
    fn all_three_engines_agree() {
        let (sys, golden, faults) = setup();
        let reference = SerialEngine.run(&sys, &golden, &faults);
        for kind in [
            EngineKind::Lane,
            EngineKind::Threaded(2),
            EngineKind::Threaded(8),
        ] {
            let got = kind.build().run(&sys, &golden, &faults);
            assert_eq!(got, reference, "{kind:?} disagrees with serial");
        }
    }

    #[test]
    fn threaded_is_byte_identical_to_lane_at_any_thread_count() {
        let (sys, golden, faults) = setup();
        let lane = LaneEngine.run(&sys, &golden, &faults);
        for threads in [1, 2, 3, 8] {
            let threaded = ThreadedEngine::new(threads).run(&sys, &golden, &faults);
            assert_eq!(threaded, lane, "threads = {threads}");
        }
    }

    #[test]
    fn for_threads_degenerates_to_lane_at_one() {
        assert_eq!(EngineKind::for_threads(1), EngineKind::Lane);
        assert_eq!(EngineKind::for_threads(4), EngineKind::Threaded(4));
    }

    #[test]
    fn campaign_reports_one_event_per_fault() {
        let (sys, golden, faults) = setup();
        let counters = sfr_exec::Counters::new();
        let outcomes = run_campaign(&LaneEngine, &sys, &golden, &faults, &counters);
        let snap = counters.snapshot();
        assert_eq!(snap.faults_simulated, faults.len());
        let detected = outcomes
            .iter()
            .filter(|o| o.detection.is_detected())
            .count();
        assert_eq!(snap.faults_dropped, detected);
    }
}
