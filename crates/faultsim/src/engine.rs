//! Selectable fault-simulation engines behind one trait.
//!
//! The interpretive engines — [`SerialEngine`] (one fault at a time),
//! [`LaneEngine`] (63 faults per machine word), [`ThreadedEngine`]
//! (63-fault batches sharded across scoped worker threads) — produce
//! identical verdict vectors for the same inputs. The threaded engine
//! is outcome-identical to the lane engine *by construction*: batch
//! boundaries are fixed at [`MAX_PARALLEL_FAULTS`] regardless of thread
//! count, each batch is an independent simulation, and the executor
//! reassembles batch results in fault order.
//!
//! The compiled engines — [`TapeEngine`] (63 faults per `u64` word on
//! the levelized op tape) and [`TapeWideEngine`] (255 faults per
//! 256-bit word) — swap the inner evaluator for
//! [`sfr_netlist::TapeSim`] while keeping the same verdicts per fault;
//! the `u64` tape additionally keeps the interpretive engines' batch
//! boundaries, so its event and trace streams are byte-identical too.

use crate::campaign::{run_parallel, run_serial, run_tape_counted, CampaignOutcome, Detection};
use crate::golden::GoldenTrace;
use crate::system::System;
use sfr_exec::{
    par_map_indexed, par_map_indexed_caught, NullProgress, Phase, Progress, ProgressEvent,
    TraceRecord, WorkKind,
};
use sfr_journal::{decode_str, encode_str, CampaignJournal, RecordKind};
use sfr_netlist::{StuckAt, MAX_PARALLEL_FAULTS, MAX_WIDE_FAULTS, W256};

/// The inner evaluation kernel an engine (and the grading stage that
/// follows it) runs on. Downstream phases that simulate on their own —
/// Monte Carlo power grading, notably — read this off the campaign
/// engine so one `--engine` selection drives the whole pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimKernel {
    /// The graph-walking [`sfr_netlist::ParallelFaultSim`] (63 faults
    /// per word) — the equivalence reference.
    #[default]
    Interpretive,
    /// The compiled op tape over `u64` words (63 faults per pack).
    Tape,
    /// The compiled op tape over 256-bit words (255 faults per pack).
    TapeWide,
}

/// A fault-simulation engine: turns a fault list into a verdict per
/// fault, against one golden trace.
///
/// All engines must return outcomes in fault order and agree on every
/// verdict (see the equivalence tests); they differ only in wall-clock
/// time.
pub trait Engine: Sync {
    /// A short identifier for reports (`"serial"`, `"lane"`, …).
    fn name(&self) -> &'static str;

    /// Runs the campaign.
    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome>;

    /// Runs the campaign and also reports the simulator cycles it
    /// evaluated, for the observability stream. The default conservatively
    /// reports 0 cycles (an engine that doesn't count doesn't guess);
    /// all built-in engines override it.
    fn run_counted(
        &self,
        sys: &System,
        golden: &GoldenTrace,
        faults: &[StuckAt],
    ) -> (Vec<CampaignOutcome>, u64) {
        (self.run(sys, golden, faults), 0)
    }

    /// The worker count this engine represents — downstream per-fault
    /// stages (controller-table analysis, the symbolic oracle) shard to
    /// the same width. 1 for the single-threaded engines.
    fn threads(&self) -> usize {
        1
    }

    /// Faults per independent simulation batch. Campaign chunking
    /// (including the quarantine/journal layer) follows this, so an
    /// engine with wider words gets proportionally fewer, larger
    /// chunks.
    fn chunk_capacity(&self) -> usize {
        MAX_PARALLEL_FAULTS
    }

    /// The inner evaluation kernel, for downstream phases that simulate
    /// on their own (Monte Carlo power grading).
    fn kernel(&self) -> SimKernel {
        SimKernel::Interpretive
    }
}

/// One fault at a time — the reference engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialEngine;

impl Engine for SerialEngine {
    fn name(&self) -> &'static str {
        "serial"
    }

    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome> {
        run_serial(sys, golden, faults)
    }

    fn run_counted(
        &self,
        sys: &System,
        golden: &GoldenTrace,
        faults: &[StuckAt],
    ) -> (Vec<CampaignOutcome>, u64) {
        crate::campaign::run_serial_counted(sys, golden, faults)
    }
}

/// 63 faults per machine word, single-threaded.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneEngine;

impl Engine for LaneEngine {
    fn name(&self) -> &'static str {
        "lane"
    }

    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome> {
        run_parallel(sys, golden, faults)
    }

    fn run_counted(
        &self,
        sys: &System,
        golden: &GoldenTrace,
        faults: &[StuckAt],
    ) -> (Vec<CampaignOutcome>, u64) {
        crate::campaign::run_parallel_counted(sys, golden, faults)
    }
}

/// 63-fault batches sharded across scoped worker threads.
#[derive(Debug, Clone, Copy)]
pub struct ThreadedEngine {
    threads: usize,
}

impl ThreadedEngine {
    /// An engine using `threads` workers (0 means the machine's
    /// available parallelism).
    pub fn new(threads: usize) -> Self {
        ThreadedEngine {
            threads: if threads == 0 {
                sfr_exec::default_threads()
            } else {
                threads
            },
        }
    }
}

impl Engine for ThreadedEngine {
    fn name(&self) -> &'static str {
        "threaded"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome> {
        // Batch boundaries match the lane engine exactly; each batch is
        // an independent `run_parallel` call, so per-batch behaviour
        // (lane assignment, fault dropping) is untouched by sharding.
        let batches: Vec<&[StuckAt]> = faults.chunks(MAX_PARALLEL_FAULTS).collect();
        par_map_indexed(self.threads, batches.len(), |i| {
            run_parallel(sys, golden, batches[i])
        })
        .into_iter()
        .flatten()
        .collect()
    }

    fn run_counted(
        &self,
        sys: &System,
        golden: &GoldenTrace,
        faults: &[StuckAt],
    ) -> (Vec<CampaignOutcome>, u64) {
        let batches: Vec<&[StuckAt]> = faults.chunks(MAX_PARALLEL_FAULTS).collect();
        let per_batch = par_map_indexed(self.threads, batches.len(), |i| {
            crate::campaign::run_parallel_counted(sys, golden, batches[i])
        });
        let mut outcomes = Vec::with_capacity(faults.len());
        let mut cycles = 0u64;
        for (batch_outcomes, batch_cycles) in per_batch {
            outcomes.extend(batch_outcomes);
            cycles += batch_cycles;
        }
        (outcomes, cycles)
    }
}

/// Compiled op-tape kernel: 63 faults per `u64` word, batches sharded
/// across scoped worker threads (1 = run inline).
///
/// Batch boundaries match the interpretive engines exactly, and every
/// lane computes the same dual-rail values, so verdicts, cycle counts,
/// event streams, and trace records are all byte-identical to
/// [`LaneEngine`] / [`ThreadedEngine`] at any thread count — only the
/// inner evaluator (and the wall clock) changes.
#[derive(Debug, Clone, Copy)]
pub struct TapeEngine {
    threads: usize,
}

impl TapeEngine {
    /// An engine using `threads` workers (0 means the machine's
    /// available parallelism).
    pub fn new(threads: usize) -> Self {
        TapeEngine {
            threads: if threads == 0 {
                sfr_exec::default_threads()
            } else {
                threads
            },
        }
    }
}

impl Engine for TapeEngine {
    fn name(&self) -> &'static str {
        "tape"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn kernel(&self) -> SimKernel {
        SimKernel::Tape
    }

    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome> {
        self.run_counted(sys, golden, faults).0
    }

    fn run_counted(
        &self,
        sys: &System,
        golden: &GoldenTrace,
        faults: &[StuckAt],
    ) -> (Vec<CampaignOutcome>, u64) {
        let batches: Vec<&[StuckAt]> = faults.chunks(MAX_PARALLEL_FAULTS).collect();
        let per_batch = par_map_indexed(self.threads, batches.len(), |i| {
            run_tape_counted::<u64>(sys, golden, batches[i])
        });
        let mut outcomes = Vec::with_capacity(faults.len());
        let mut cycles = 0u64;
        for (batch_outcomes, batch_cycles) in per_batch {
            outcomes.extend(batch_outcomes);
            cycles += batch_cycles;
        }
        (outcomes, cycles)
    }
}

/// Compiled op-tape kernel over 256-bit words: 255 faults per pack.
///
/// Per-fault verdicts are identical to every other engine, but packs
/// are four times wider, so chunk-granular artifacts (journal records,
/// per-chunk trace records, cycle totals under fault dropping) regroup
/// accordingly — see [`Engine::chunk_capacity`].
#[derive(Debug, Clone, Copy)]
pub struct TapeWideEngine {
    threads: usize,
}

impl TapeWideEngine {
    /// An engine using `threads` workers (0 means the machine's
    /// available parallelism).
    pub fn new(threads: usize) -> Self {
        TapeWideEngine {
            threads: if threads == 0 {
                sfr_exec::default_threads()
            } else {
                threads
            },
        }
    }
}

impl Engine for TapeWideEngine {
    fn name(&self) -> &'static str {
        "tape-wide"
    }

    fn threads(&self) -> usize {
        self.threads
    }

    fn chunk_capacity(&self) -> usize {
        MAX_WIDE_FAULTS
    }

    fn kernel(&self) -> SimKernel {
        SimKernel::TapeWide
    }

    fn run(&self, sys: &System, golden: &GoldenTrace, faults: &[StuckAt]) -> Vec<CampaignOutcome> {
        self.run_counted(sys, golden, faults).0
    }

    fn run_counted(
        &self,
        sys: &System,
        golden: &GoldenTrace,
        faults: &[StuckAt],
    ) -> (Vec<CampaignOutcome>, u64) {
        let batches: Vec<&[StuckAt]> = faults.chunks(MAX_WIDE_FAULTS).collect();
        let per_batch = par_map_indexed(self.threads, batches.len(), |i| {
            run_tape_counted::<W256>(sys, golden, batches[i])
        });
        let mut outcomes = Vec::with_capacity(faults.len());
        let mut cycles = 0u64;
        for (batch_outcomes, batch_cycles) in per_batch {
            outcomes.extend(batch_outcomes);
            cycles += batch_cycles;
        }
        (outcomes, cycles)
    }
}

/// Which engine to run — the serializable selector the study API and
/// the CLI expose.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// [`SerialEngine`].
    Serial,
    /// [`LaneEngine`] (the single-threaded default).
    #[default]
    Lane,
    /// [`ThreadedEngine`] with the given worker count (0 = all cores).
    Threaded(usize),
    /// [`TapeEngine`] with the given worker count (0 = all cores).
    Tape(usize),
    /// [`TapeWideEngine`] with the given worker count (0 = all cores).
    TapeWide(usize),
}

impl EngineKind {
    /// Instantiates the selected engine.
    pub fn build(self) -> Box<dyn Engine> {
        match self {
            EngineKind::Serial => Box::new(SerialEngine),
            EngineKind::Lane => Box::new(LaneEngine),
            EngineKind::Threaded(n) => Box::new(ThreadedEngine::new(n)),
            EngineKind::Tape(n) => Box::new(TapeEngine::new(n)),
            EngineKind::TapeWide(n) => Box::new(TapeWideEngine::new(n)),
        }
    }

    /// The selector for a worker count: 0 or 1 workers degenerate to
    /// the lane engine (same outcomes, no thread overhead).
    pub fn for_threads(threads: usize) -> Self {
        if threads == 1 {
            EngineKind::Lane
        } else {
            EngineKind::Threaded(threads)
        }
    }

    /// Parses a CLI selector (`serial`, `lane`, `threaded`, `tape`,
    /// `tape-wide`), binding thread-scalable engines to `threads`.
    /// Returns `None` for an unknown name.
    pub fn parse(name: &str, threads: usize) -> Option<EngineKind> {
        Some(match name {
            "serial" => EngineKind::Serial,
            "lane" => EngineKind::Lane,
            "threaded" => EngineKind::Threaded(threads),
            "tape" => EngineKind::Tape(threads),
            "tape-wide" => EngineKind::TapeWide(threads),
            _ => return None,
        })
    }
}

/// Runs a campaign on `engine`, reporting one
/// [`ProgressEvent::FaultSimulated`] per fault (a detected fault is
/// dropped from further phases).
pub fn run_campaign(
    engine: &dyn Engine,
    sys: &System,
    golden: &GoldenTrace,
    faults: &[StuckAt],
    progress: &dyn Progress,
) -> Vec<CampaignOutcome> {
    let outcomes = engine.run(sys, golden, faults);
    for o in &outcomes {
        progress.event(ProgressEvent::FaultSimulated {
            dropped: o.detection.is_detected(),
        });
    }
    outcomes
}

/// A fault-simulation chunk that panicked twice and was quarantined:
/// its faults carry no verdicts, the rest of the campaign is intact.
#[derive(Debug, Clone, PartialEq)]
pub struct QuarantinedChunk {
    /// Chunk index (chunks of the engine's [`Engine::chunk_capacity`]).
    pub chunk: usize,
    /// The faults that were in the chunk.
    pub faults: Vec<StuckAt>,
    /// The panic payload message.
    pub message: String,
}

/// Journal payload tags for fault-simulation chunks.
const CHUNK_OK: u64 = 0;
const CHUNK_QUARANTINED: u64 = 1;

fn encode_outcomes(outcomes: &[CampaignOutcome]) -> Vec<u64> {
    let mut words = vec![CHUNK_OK, outcomes.len() as u64];
    for o in outcomes {
        let (tag, cycle) = match o.detection {
            Detection::NotDetected => (0u64, 0usize),
            Detection::Detected { cycle } => (1, cycle),
            Detection::Potential { cycle } => (2, cycle),
        };
        words.push(tag);
        words.push(cycle as u64);
    }
    words
}

/// Decodes a journaled chunk against the fault slice it was keyed to;
/// `None` (recompute) on any shape mismatch.
fn decode_outcomes(words: &[u64], faults: &[StuckAt]) -> Option<Vec<CampaignOutcome>> {
    if *words.first()? != CHUNK_OK {
        return None;
    }
    let n = usize::try_from(*words.get(1)?).ok()?;
    if n != faults.len() || words.len() != 2 + 2 * n {
        return None;
    }
    let mut outcomes = Vec::with_capacity(n);
    for (i, pair) in words[2..].chunks(2).enumerate() {
        let cycle = usize::try_from(pair[1]).ok()?;
        let detection = match pair[0] {
            0 => Detection::NotDetected,
            1 => Detection::Detected { cycle },
            2 => Detection::Potential { cycle },
            _ => return None,
        };
        outcomes.push(CampaignOutcome {
            fault: faults[i],
            detection,
        });
    }
    Some(outcomes)
}

/// Crash-safe, fault-isolated [`run_campaign`]: the fault list is cut
/// into [`Engine::chunk_capacity`]-sized chunks (the same boundaries
/// the engine already batches on, so verdicts are unchanged), each
/// chunk runs under panic quarantine, and completed chunks are
/// checkpointed to `journal`. A journal written under one chunk
/// capacity is shape-checked per record, so resuming with an engine of
/// a different width recomputes rather than misattributes.
///
/// Returns the outcomes of every surviving chunk in fault order plus
/// one [`QuarantinedChunk`] per chunk that panicked twice. Chunks found
/// in `journal` are restored verbatim instead of resimulated
/// ([`ProgressEvent::PackRestored`]); journaled quarantine verdicts are
/// likewise replayed, so a resumed campaign reproduces the original
/// incident list without re-panicking.
pub fn run_campaign_quarantined(
    engine: &dyn Engine,
    sys: &System,
    golden: &GoldenTrace,
    faults: &[StuckAt],
    progress: &dyn Progress,
    journal: Option<&CampaignJournal>,
) -> (Vec<CampaignOutcome>, Vec<QuarantinedChunk>) {
    enum ChunkOutcome {
        Computed {
            outcomes: Vec<CampaignOutcome>,
            cycles: u64,
            elapsed: std::time::Duration,
        },
        Restored(Vec<CampaignOutcome>),
        ReplayedQuarantine(String),
    }
    let chunks: Vec<&[StuckAt]> = faults.chunks(engine.chunk_capacity()).collect();
    progress.event(ProgressEvent::WorkPlanned {
        phase: Phase::FaultSim,
        items: chunks.len(),
    });
    let slots = par_map_indexed_caught(engine.threads(), chunks.len(), |i| {
        let chunk = chunks[i];
        if let Some(j) = journal {
            if let Some(words) = j.get(RecordKind::FaultSim, i as u64) {
                if let Some(outcomes) = decode_outcomes(&words, chunk) {
                    return ChunkOutcome::Restored(outcomes);
                }
                if words.first() == Some(&CHUNK_QUARANTINED) {
                    if let Some((message, _)) = decode_str(&words[1..]) {
                        return ChunkOutcome::ReplayedQuarantine(message);
                    }
                }
                // Undecodable payload: fall through and resimulate.
            }
        }
        // Wall time is measured here in the worker (the coordinating
        // thread replays events post-hoc, long after the work ran).
        let started = std::time::Instant::now();
        let (outcomes, cycles) = engine.run_counted(sys, golden, chunk);
        let elapsed = started.elapsed();
        if let Some(j) = journal {
            j.record(RecordKind::FaultSim, i as u64, &encode_outcomes(&outcomes));
        }
        ChunkOutcome::Computed {
            outcomes,
            cycles,
            elapsed,
        }
    });

    let mut all = Vec::with_capacity(faults.len());
    let mut quarantined = Vec::new();
    // Records allocate (fault-id rendering), so only build them when a
    // sink asked; this loop runs post-hoc on the coordinating thread in
    // chunk order, keeping the trace layout deterministic.
    let tracing = progress.wants_records();
    let chunk_ids = |chunk: &[StuckAt]| chunk.iter().map(StuckAt::to_string).collect::<Vec<_>>();
    let chunk_record = |i: usize, outcomes: &[CampaignOutcome], cycles, elapsed, restored| {
        let mut detected = 0;
        let mut potential = 0;
        for o in outcomes {
            match o.detection {
                Detection::Detected { .. } => detected += 1,
                Detection::Potential { .. } => potential += 1,
                Detection::NotDetected => {}
            }
        }
        TraceRecord::ChunkSimulated {
            chunk: i,
            fault_ids: chunk_ids(chunks[i]),
            detected,
            potential,
            cycles,
            elapsed,
            restored,
        }
    };
    for (i, slot) in slots.into_iter().enumerate() {
        let mut quarantine = |message: String, journal_it: bool| {
            if journal_it {
                if let Some(j) = journal {
                    let mut words = vec![CHUNK_QUARANTINED];
                    words.extend(encode_str(&message));
                    j.record(RecordKind::FaultSim, i as u64, &words);
                }
            }
            progress.event(ProgressEvent::PackQuarantined {
                faults: chunks[i].len(),
            });
            if tracing {
                progress.record(&TraceRecord::Quarantined {
                    kind: WorkKind::FaultSimChunk,
                    index: i,
                    fault_ids: chunk_ids(chunks[i]),
                    message: message.clone(),
                    journal_key: journal.map(|_| RecordKind::FaultSim.key(i as u64)),
                });
            }
            quarantined.push(QuarantinedChunk {
                chunk: i,
                faults: chunks[i].to_vec(),
                message,
            });
        };
        match slot {
            Ok(ChunkOutcome::Computed {
                outcomes,
                cycles,
                elapsed,
            }) => {
                progress.event(ProgressEvent::CyclesSimulated { cycles });
                for o in &outcomes {
                    progress.event(ProgressEvent::FaultSimulated {
                        dropped: o.detection.is_detected(),
                    });
                }
                if tracing {
                    progress.record(&chunk_record(i, &outcomes, cycles, elapsed, false));
                }
                all.extend(outcomes);
            }
            Ok(ChunkOutcome::Restored(outcomes)) => {
                progress.event(ProgressEvent::PackRestored {
                    faults: chunks[i].len(),
                });
                if tracing {
                    progress.record(&chunk_record(
                        i,
                        &outcomes,
                        0,
                        std::time::Duration::ZERO,
                        true,
                    ));
                }
                all.extend(outcomes);
            }
            Ok(ChunkOutcome::ReplayedQuarantine(message)) => quarantine(message, false),
            Err(panic) => quarantine(panic.message, true),
        }
    }
    (all, quarantined)
}

/// Convenience wrapper: campaign with no observer.
pub fn run_with(
    engine: &dyn Engine,
    sys: &System,
    golden: &GoldenTrace,
    faults: &[StuckAt],
) -> Vec<CampaignOutcome> {
    run_campaign(engine, sys, golden, faults, &NullProgress)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::golden::{golden_trace, RunConfig};
    use crate::system::tests::toy_system;
    use sfr_tpg::TestSet;

    fn setup() -> (System, GoldenTrace, Vec<StuckAt>) {
        let sys = toy_system();
        let ts = TestSet::pseudorandom(sys.pattern_width(), 120, 0xACE1).unwrap();
        let golden = golden_trace(&sys, &ts, &RunConfig::default());
        let faults = sys.controller_faults();
        (sys, golden, faults)
    }

    #[test]
    fn all_three_engines_agree() {
        let (sys, golden, faults) = setup();
        let reference = SerialEngine.run(&sys, &golden, &faults);
        for kind in [
            EngineKind::Lane,
            EngineKind::Threaded(2),
            EngineKind::Threaded(8),
            EngineKind::Tape(1),
            EngineKind::Tape(2),
            EngineKind::TapeWide(1),
            EngineKind::TapeWide(2),
        ] {
            let got = kind.build().run(&sys, &golden, &faults);
            assert_eq!(got, reference, "{kind:?} disagrees with serial");
        }
    }

    #[test]
    fn tape_is_byte_identical_to_lane_including_cycles() {
        let (sys, golden, faults) = setup();
        let (lane, lane_cycles) = LaneEngine.run_counted(&sys, &golden, &faults);
        for threads in [1, 2, 8] {
            let (tape, tape_cycles) = TapeEngine::new(threads).run_counted(&sys, &golden, &faults);
            assert_eq!(tape, lane, "threads = {threads}");
            assert_eq!(tape_cycles, lane_cycles, "threads = {threads}");
        }
    }

    #[test]
    fn engine_kind_parses_cli_names() {
        assert_eq!(EngineKind::parse("serial", 4), Some(EngineKind::Serial));
        assert_eq!(EngineKind::parse("lane", 4), Some(EngineKind::Lane));
        assert_eq!(
            EngineKind::parse("threaded", 4),
            Some(EngineKind::Threaded(4))
        );
        assert_eq!(EngineKind::parse("tape", 4), Some(EngineKind::Tape(4)));
        assert_eq!(
            EngineKind::parse("tape-wide", 4),
            Some(EngineKind::TapeWide(4))
        );
        assert_eq!(EngineKind::parse("warp", 4), None);
    }

    #[test]
    fn threaded_is_byte_identical_to_lane_at_any_thread_count() {
        let (sys, golden, faults) = setup();
        let lane = LaneEngine.run(&sys, &golden, &faults);
        for threads in [1, 2, 3, 8] {
            let threaded = ThreadedEngine::new(threads).run(&sys, &golden, &faults);
            assert_eq!(threaded, lane, "threads = {threads}");
        }
    }

    #[test]
    fn for_threads_degenerates_to_lane_at_one() {
        assert_eq!(EngineKind::for_threads(1), EngineKind::Lane);
        assert_eq!(EngineKind::for_threads(4), EngineKind::Threaded(4));
    }

    #[test]
    fn campaign_reports_one_event_per_fault() {
        let (sys, golden, faults) = setup();
        let counters = sfr_exec::Counters::new();
        let outcomes = run_campaign(&LaneEngine, &sys, &golden, &faults, &counters);
        let snap = counters.snapshot();
        assert_eq!(snap.faults_simulated, faults.len());
        let detected = outcomes
            .iter()
            .filter(|o| o.detection.is_detected())
            .count();
        assert_eq!(snap.faults_dropped, detected);
    }
}
