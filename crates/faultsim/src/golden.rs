//! The fault-free reference trace of an integrated test session.
//!
//! A test session is a sequence of *runs*: the tester resets the pair,
//! lets the computation execute with TPGR data on the inputs, observes
//! the data outputs every cycle, and resets again. Run boundaries are
//! fixed by simulating the fault-free system once (the test program a
//! real tester would replay); faulty circuits are then compared
//! cycle-for-cycle against this trace.

use crate::system::System;
use sfr_fsm::StateId;
use sfr_netlist::{CycleSim, Logic};
use sfr_tpg::TestSet;

/// One run within a session (a reset-to-reset window).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Index of the run's first cycle in the session.
    pub start: usize,
    /// Number of cycles.
    pub len: usize,
}

/// Session shaping parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunConfig {
    /// Hard per-run cycle limit (loop guard for data that never exits).
    pub max_cycles_per_run: usize,
    /// Cycles to keep observing after the controller reaches HOLD.
    pub hold_cycles: usize,
    /// Watchdog budget: an additional per-run cycle ceiling applied to
    /// *faulty* simulation during power grading (0 = disabled). Callers
    /// set it to a multiple of the design's nominal run length (see
    /// `System::nominal_run_cycles`); a faulty run that is still not in
    /// HOLD when its budget expires is reported as budget-exhausted
    /// instead of burning cycles until `max_cycles_per_run`.
    ///
    /// The fault-free golden trace never consults the budget — run
    /// boundaries, and therefore every classification verdict, are
    /// identical with the watchdog on or off.
    pub cycle_budget: usize,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_cycles_per_run: 200,
            hold_cycles: 2,
            cycle_budget: 0,
        }
    }
}

impl RunConfig {
    /// The effective per-run cycle ceiling for faulty simulation: the
    /// loop guard, tightened by the watchdog budget when one is set.
    pub fn run_ceiling(&self) -> usize {
        if self.cycle_budget == 0 {
            self.max_cycles_per_run
        } else {
            self.max_cycles_per_run.min(self.cycle_budget)
        }
    }
}

/// The fault-free session trace.
#[derive(Debug, Clone)]
pub struct GoldenTrace {
    /// Run boundaries.
    pub runs: Vec<RunSpec>,
    /// The pattern applied in each cycle.
    pub patterns: Vec<u64>,
    /// Settled primary-output values per cycle.
    pub outputs: Vec<Vec<Logic>>,
    /// Settled control-word values per cycle (controller output nets).
    pub ctrl: Vec<Vec<Logic>>,
    /// Decoded controller state per cycle (`None` if undecodable).
    pub states: Vec<Option<StateId>>,
}

impl GoldenTrace {
    /// Total cycles in the session.
    pub fn cycles(&self) -> usize {
        self.patterns.len()
    }
}

/// Simulates the fault-free system over a test set, fixing the session's
/// run boundaries.
///
/// Each run starts from a tester reset (controller in its reset state,
/// datapath registers unknown — real silicon powers up to arbitrary
/// values, and `X` is the simulator's sound abstraction of that). One
/// pattern is consumed per cycle; a run ends `hold_cycles` after the
/// controller reaches HOLD (or at the loop-guard limit), and the next
/// run begins on the following pattern. Trailing patterns too few to
/// start a meaningful run are still consumed (a short final run).
pub fn golden_trace(sys: &System, ts: &TestSet, cfg: &RunConfig) -> GoldenTrace {
    assert_eq!(
        ts.width(),
        sys.pattern_width(),
        "test set width must equal ports × datapath width"
    );
    let mut trace = GoldenTrace {
        runs: Vec::new(),
        patterns: Vec::new(),
        outputs: Vec::new(),
        ctrl: Vec::new(),
        states: Vec::new(),
    };
    let mut sim = CycleSim::new(&sys.netlist);
    let mut idx = 0usize;
    let hold = sys.meta.hold_state();

    while idx < ts.len() {
        let start = trace.patterns.len();
        sys.reset_sim(&mut sim, Logic::X);
        let mut in_hold_for = 0usize;
        let mut len = 0usize;
        while idx < ts.len() && len < cfg.max_cycles_per_run {
            let pat = ts.patterns()[idx];
            idx += 1;
            len += 1;
            sys.apply_pattern(&mut sim, pat);
            sim.eval();
            trace.patterns.push(pat);
            trace.outputs.push(sim.outputs());
            trace
                .ctrl
                .push(sys.ctrl.output_nets.iter().map(|&n| sim.value(n)).collect());
            let st = sys.decode_state(&sim);
            trace.states.push(st);
            sim.clock();
            if st == Some(hold) {
                in_hold_for += 1;
                if in_hold_for > cfg.hold_cycles {
                    break;
                }
            }
        }
        trace.runs.push(RunSpec { start, len });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::tests::toy_system;
    use sfr_netlist::logic_to_u64;

    #[test]
    fn golden_trace_partitions_patterns_into_runs() {
        let sys = toy_system();
        let ts = TestSet::pseudorandom(sys.pattern_width(), 60, 0xACE1).unwrap();
        let trace = golden_trace(&sys, &ts, &RunConfig::default());
        assert_eq!(trace.cycles(), 60);
        // toy: RESET, CS1..CS3, HOLD + 2 extra hold cycles = 7 cycles/run.
        assert!(trace.runs.len() >= 8);
        let total: usize = trace.runs.iter().map(|r| r.len).sum();
        assert_eq!(total, 60);
        // Runs are contiguous.
        let mut expect = 0;
        for r in &trace.runs {
            assert_eq!(r.start, expect);
            expect += r.len;
        }
    }

    #[test]
    fn golden_outputs_settle_to_computation_results() {
        let sys = toy_system();
        // One fixed pattern: a=3, b=4 always → s=15 at HOLD.
        let ts = TestSet::from_patterns(8, vec![3 | 4 << 4; 14]);
        let trace = golden_trace(&sys, &ts, &RunConfig::default());
        let hold = sys.meta.hold_state();
        let hold_cycles: Vec<usize> = (0..trace.cycles())
            .filter(|&c| trace.states[c] == Some(hold))
            .collect();
        assert!(!hold_cycles.is_empty());
        for c in hold_cycles {
            assert_eq!(logic_to_u64(&trace.outputs[c]), Some(15));
        }
    }

    #[test]
    fn golden_ctrl_trace_is_fully_known() {
        let sys = toy_system();
        let ts = TestSet::pseudorandom(sys.pattern_width(), 30, 7).unwrap();
        let trace = golden_trace(&sys, &ts, &RunConfig::default());
        for (c, word) in trace.ctrl.iter().enumerate() {
            for v in word {
                assert!(v.is_known(), "control X at cycle {c}");
            }
        }
        // States always decodable in the fault-free machine.
        assert!(trace.states.iter().all(|s| s.is_some()));
    }
}
