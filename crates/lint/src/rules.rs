//! The design-lint rule suite.
//!
//! | rule id                   | severity | fires on |
//! |---------------------------|----------|----------|
//! | `unreachable-state`       | error    | FSM states no transition path from reset reaches |
//! | `dead-transition`         | warning  | transitions shadowed by earlier guards |
//! | `constant-net`            | warning  | controller nets stuck at one value over every reachable evaluation |
//! | `dead-gate`               | warning  | gates whose output feeds nothing |
//! | `never-selected-mux-input`| info     | mux legs no schedule step routes (§3.1 don't-care coverage) |
//! | `lifespan-overlap`        | error    | two variables sharing a register with overlapping lifespans |
//! | `combinational-loop`      | error    | a cycle through combinational cells (full path reported) |
//! | `invalid-netlist`         | error    | other structural validation failures of parsed Verilog |
//! | `parse-error`             | error    | malformed structural Verilog |

use crate::constprop::controller_net_constants;
use crate::diag::{Diagnostic, LintReport, Location, Severity};
use sfr_faultsim::System;
use sfr_fsm::FsmSpec;
use sfr_hls::{spans_conflict, DesignMeta};
use sfr_netlist::{parse_verilog_spanned, CellKind, Netlist, NetlistError, SourceSpans};
use std::collections::BTreeSet;

/// Lints a controller specification: reachability and transition
/// liveness.
pub fn lint_fsm(spec: &FsmSpec) -> LintReport {
    let mut r = LintReport::new();
    let reachable = spec.reachable_states();
    for s in spec.states() {
        if !reachable[s.0] {
            r.push(Diagnostic {
                rule: "unreachable-state",
                severity: Severity::Error,
                location: Location {
                    subject: spec.state_name(s).to_string(),
                    span: None,
                },
                message: format!(
                    "state `{}` is not reachable from reset state `{}`",
                    spec.state_name(s),
                    spec.state_name(sfr_fsm::StateId(0))
                ),
            });
        }
        for (i, live) in spec.transition_liveness(s).iter().enumerate() {
            if !live {
                let t = &spec.transitions(s)[i];
                r.push(Diagnostic {
                    rule: "dead-transition",
                    severity: Severity::Warning,
                    location: Location {
                        subject: format!("{}#{i}", spec.state_name(s)),
                        span: None,
                    },
                    message: format!(
                        "transition {i} of state `{}` (to `{}`) can never fire: \
                         every matching status is claimed by an earlier guard",
                        spec.state_name(s),
                        spec.state_name(t.to)
                    ),
                });
            }
        }
    }
    r
}

/// Lints a bare gate-level netlist: gates driving nothing. `spans`
/// (from [`parse_verilog_spanned`]) attaches source locations when the
/// netlist came from text.
pub fn lint_netlist(nl: &Netlist, spans: Option<&SourceSpans>) -> LintReport {
    let mut r = LintReport::new();
    for g in nl.gate_ids() {
        let gate = nl.gate(g);
        let out = gate.output();
        if nl.fanout(out).is_empty() && !nl.outputs().contains(&out) {
            r.push(Diagnostic {
                rule: "dead-gate",
                severity: Severity::Warning,
                location: Location {
                    subject: gate.name().to_string(),
                    span: spans.and_then(|s| s.gate(gate.name())),
                },
                message: format!(
                    "gate `{}` drives net `{}`, which nothing reads",
                    gate.name(),
                    nl.net(out).name()
                ),
            });
        }
    }
    r
}

/// Lints the HLS schedule metadata: register lifespan overlaps and
/// never-selected mux legs.
pub fn lint_schedule(meta: &DesignMeta, muxes: &[sfr_rtl::Mux]) -> LintReport {
    let mut r = LintReport::new();
    for (reg, spans) in meta.spans.iter().enumerate() {
        for (i, a) in spans.iter().enumerate() {
            for b in spans.iter().skip(i + 1) {
                if spans_conflict(a, b, meta.n_steps) {
                    r.push(Diagnostic {
                        rule: "lifespan-overlap",
                        severity: Severity::Error,
                        location: Location {
                            subject: meta.reg_names[reg].clone(),
                            span: None,
                        },
                        message: format!(
                            "variables `{}` (written CS{}) and `{}` (written CS{}) \
                             share register `{}` with overlapping lifespans",
                            a.var, a.write, b.var, b.write, meta.reg_names[reg]
                        ),
                    });
                }
            }
        }
    }
    for (m, mux) in muxes.iter().enumerate() {
        let routed: BTreeSet<usize> = meta
            .required_select
            .iter()
            .filter(|&(&(mm, _), _)| mm == m)
            .map(|(_, &leg)| leg)
            .collect();
        for leg in 0..mux.inputs().len() {
            if !routed.contains(&leg) {
                r.push(Diagnostic {
                    rule: "never-selected-mux-input",
                    severity: Severity::Info,
                    location: Location {
                        subject: format!("{}.in{leg}", mux.name()),
                        span: None,
                    },
                    message: format!(
                        "input {leg} of mux `{}` is never routed by the schedule: \
                         its select code is a don't care (§3.1 slack)",
                        mux.name()
                    ),
                });
            }
        }
    }
    r
}

/// Runs the full suite over an assembled system: FSM rules, schedule
/// rules, and controller-netlist rules (constant nets over the
/// reachable evaluation domain, dead gates).
pub fn lint_system(sys: &System) -> LintReport {
    let mut r = lint_fsm(sys.fsm.spec());
    r.extend(lint_schedule(&sys.meta, sys.datapath.muxes()));
    r.extend(lint_netlist(&sys.ctrl_netlist, None));

    let constants = controller_net_constants(sys);
    let nl = &sys.ctrl_netlist;
    for net in nl.net_ids() {
        if nl.inputs().contains(&net) {
            continue; // status inputs are the domain, not subjects
        }
        // Constant cells are constant on purpose.
        if let Some(g) = nl.driver(net) {
            if matches!(nl.gate(g).kind(), CellKind::Const0 | CellKind::Const1) {
                continue;
            }
        }
        if let Some(v) = constants.constant_reachable(net) {
            r.push(Diagnostic {
                rule: "constant-net",
                severity: Severity::Warning,
                location: Location {
                    subject: nl.net(net).name().to_string(),
                    span: None,
                },
                message: format!(
                    "net `{}` holds {} in every reachable controller evaluation",
                    nl.net(net).name(),
                    u8::from(v)
                ),
            });
        }
    }
    r
}

/// Lints structural Verilog text: parse failures (including
/// combinational loops, with the full cycle path) become diagnostics
/// positioned at the offending source line; valid modules get the
/// netlist rules with source spans attached.
pub fn lint_verilog(src: &str) -> LintReport {
    let mut r = LintReport::new();
    match parse_verilog_spanned(src) {
        Ok((nl, spans)) => r.extend(lint_netlist(&nl, Some(&spans))),
        Err(e) => {
            let span = Some((e.line, e.col));
            match e.cause {
                Some(NetlistError::CombinationalLoop { ref cycle }) => r.push(Diagnostic {
                    rule: "combinational-loop",
                    severity: Severity::Error,
                    location: Location {
                        subject: cycle.first().cloned().unwrap_or_default(),
                        span,
                    },
                    message: format!(
                        "combinational loop: {}",
                        cycle
                            .iter()
                            .chain(cycle.first())
                            .map(|n| format!("`{n}`"))
                            .collect::<Vec<_>>()
                            .join(" -> ")
                    ),
                }),
                Some(ref cause) => r.push(Diagnostic {
                    rule: "invalid-netlist",
                    severity: Severity::Error,
                    location: Location {
                        subject: String::new(),
                        span,
                    },
                    message: cause.to_string(),
                }),
                None => r.push(Diagnostic {
                    rule: "parse-error",
                    severity: Severity::Error,
                    location: Location {
                        subject: String::new(),
                        span,
                    },
                    message: e.message,
                }),
            }
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfr_faultsim::fixtures::toy_system;
    use sfr_fsm::{FsmSpecBuilder, Tri};

    #[test]
    fn toy_system_is_error_clean() {
        // The emitted schedules and minimized controllers are valid by
        // construction: no error-severity findings.
        let r = lint_system(&toy_system());
        assert!(r.is_error_free(), "unexpected errors:\n{r}");
    }

    #[test]
    fn unreachable_state_is_an_error() {
        let mut b = FsmSpecBuilder::new("u", 0, vec!["LD".into()]);
        let s0 = b.state("A", vec![Tri::Zero]);
        let s1 = b.state("ORPHAN", vec![Tri::One]);
        b.transition(s0, &[], s0);
        b.transition(s1, &[], s0);
        let spec = b.finish().expect("valid spec");
        let r = lint_fsm(&spec);
        assert_eq!(r.error_count(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.rule, "unreachable-state");
        assert!(d.message.contains("ORPHAN"), "{}", d.message);
    }

    #[test]
    fn shadowed_transition_is_a_warning() {
        let mut b = FsmSpecBuilder::new("s", 1, vec![]);
        let s0 = b.state("A", vec![]);
        b.transition(s0, &[], s0);
        b.transition(s0, &[(0, true)], s0); // shadowed
        let spec = b.finish().expect("valid spec");
        let r = lint_fsm(&spec);
        assert!(r.is_error_free());
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.diagnostics[0].rule, "dead-transition");
    }

    #[test]
    fn combinational_loop_reports_the_cycle_with_location() {
        let looped = "module m(clk, n_a, n_o);\n  input clk;\n  input n_a;\n  output n_o;\n  wire n_x;\n  wire n_y;\n  SFR_AND2 g1(.y(n_x), .a(n_a), .b(n_y));\n  SFR_BUF g2(.y(n_y), .a(n_x));\n  SFR_BUF g3(.y(n_o), .a(n_x));\nendmodule\n";
        let r = lint_verilog(looped);
        assert_eq!(r.error_count(), 1);
        let d = &r.diagnostics[0];
        assert_eq!(d.rule, "combinational-loop");
        assert!(d.location.span.is_some(), "loop diagnostic needs a span");
        assert!(
            d.message.contains("`x`") && d.message.contains("`y`"),
            "{}",
            d.message
        );
    }

    #[test]
    fn dead_gate_found_with_span() {
        let src = "module m(clk, n_a, n_o);\n  input clk;\n  input n_a;\n  output n_o;\n  wire n_d;\n  SFR_INV dead(.y(n_d), .a(n_a));\n  SFR_BUF live(.y(n_o), .a(n_a));\nendmodule\n";
        let r = lint_verilog(src);
        assert!(r.is_error_free());
        let d = r
            .diagnostics
            .iter()
            .find(|d| d.rule == "dead-gate")
            .expect("dead gate reported");
        assert_eq!(d.location.subject, "dead");
        assert_eq!(d.location.span, Some((6, 3)));
    }

    #[test]
    fn never_selected_mux_inputs_surface_as_info() {
        // The toy system's muxes are padded to power-of-two legs; the
        // padding legs are exactly the §3.1 don't-care select codes.
        let sys = toy_system();
        let r = lint_schedule(&sys.meta, sys.datapath.muxes());
        assert!(r.is_error_free());
        for d in &r.diagnostics {
            assert!(matches!(
                d.rule,
                "never-selected-mux-input" | "lifespan-overlap"
            ));
        }
    }
}
