//! Fanout cone-of-influence analysis over the standalone controller.
//!
//! A stuck-at fault can only change controller behaviour through the
//! combinational fanout cone of the net it disturbs. If that cone
//! reaches neither a primary output (a control line) nor a sequential
//! element (a state flip-flop input), the fault is invisible to every
//! (state, status) evaluation of the exhaustive controller table — it
//! is *statically* controller-functionally redundant.

use sfr_netlist::{FaultSite, Netlist, StuckAt};

/// Whether `fault`'s influence cone is dead: it cannot reach any primary
/// output or sequential gate of `nl`.
///
/// `fault` must be in the coordinates of `nl` (for the controller, use
/// [`sfr_faultsim::System::fault_to_standalone`]). Faults attached to a
/// sequential gate are never dead — they disturb the state directly.
pub fn cone_is_dead(nl: &Netlist, fault: StuckAt) -> bool {
    let gate = match fault.site {
        FaultSite::GateInput { gate, .. } | FaultSite::GateOutput { gate } => gate,
        // A primary-input stem fans out to the whole netlist; treat it
        // as live rather than tracing (controller faults never are).
        FaultSite::PrimaryInput { .. } => return false,
    };
    if nl.gate(gate).kind().is_sequential() {
        return false;
    }
    // Both pin and output faults first manifest at the gate's output.
    let start = nl.gate(gate).output();
    let mut seen = vec![false; nl.net_ids().count()];
    let mut work = vec![start];
    seen[start.index()] = true;
    while let Some(net) = work.pop() {
        if nl.outputs().contains(&net) {
            return false;
        }
        for &(reader, _pin) in nl.fanout(net) {
            if nl.gate(reader).kind().is_sequential() {
                return false;
            }
            let out = nl.gate(reader).output();
            if !seen[out.index()] {
                seen[out.index()] = true;
                work.push(out);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfr_netlist::{CellKind, GateId, NetlistBuilder};

    /// inv chain into an output, plus a dangling inverter off the input.
    fn with_dangling() -> Netlist {
        let mut b = NetlistBuilder::new("d");
        let a = b.input("a");
        let o = b.gate_net(CellKind::Inv, "live", &[a]);
        let _dead = b.gate_net(CellKind::Inv, "dead", &[a]);
        b.mark_output(o);
        b.finish().expect("valid netlist")
    }

    #[test]
    fn dangling_gate_cone_is_dead() {
        let nl = with_dangling();
        let dead = GateId::from_index(1);
        assert!(cone_is_dead(&nl, StuckAt::output(dead, true)));
        assert!(cone_is_dead(&nl, StuckAt::input(dead, 0, false)));
    }

    #[test]
    fn observable_gate_cone_is_live() {
        let nl = with_dangling();
        let live = GateId::from_index(0);
        assert!(!cone_is_dead(&nl, StuckAt::output(live, true)));
    }

    #[test]
    fn cone_reaching_a_flipflop_is_live() {
        let mut b = NetlistBuilder::new("ff");
        let a = b.input("a");
        let d = b.gate_net(CellKind::Inv, "i", &[a]);
        let q = b.gate_net(CellKind::Dff, "r", &[d]);
        let o = b.gate_net(CellKind::Buf, "ob", &[q]);
        b.mark_output(o);
        let nl = b.finish().expect("valid netlist");
        // The inverter feeds only the FF, never an output directly.
        assert!(!cone_is_dead(
            &nl,
            StuckAt::output(GateId::from_index(0), true)
        ));
        // A fault on the FF itself is live by definition.
        assert!(!cone_is_dead(
            &nl,
            StuckAt::input(GateId::from_index(1), 0, true)
        ));
    }
}
