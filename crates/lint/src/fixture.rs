//! Deliberately-broken designs for exercising the linter end to end.
//!
//! `sfr lint --fixture` runs these and must exit nonzero: the FSM has an
//! unreachable state and the Verilog module has a combinational loop.

use crate::diag::LintReport;
use crate::rules::{lint_fsm, lint_verilog};
use sfr_fsm::{FsmSpec, FsmSpecBuilder, Tri};

/// A structural Verilog module with a combinational loop (`x` and `y`
/// feed each other).
pub const LOOPED_VERILOG: &str = "\
module loop_fixture(clk, n_a, n_o);
  input clk;
  input n_a;
  output n_o;
  wire n_x;
  wire n_y;
  SFR_AND2 g1(.y(n_x), .a(n_a), .b(n_y));
  SFR_BUF g2(.y(n_y), .a(n_x));
  SFR_BUF g3(.y(n_o), .a(n_x));
endmodule
";

/// A controller specification whose `ORPHAN` state no transition
/// targets, plus a shadowed (dead) transition.
///
/// # Panics
///
/// Never panics: the machine is transition-complete by construction.
pub fn fixture_fsm() -> FsmSpec {
    let mut b = FsmSpecBuilder::new("lint_fixture", 1, vec!["LD".into()]);
    let idle = b.state("IDLE", vec![Tri::Zero]);
    let run = b.state("RUN", vec![Tri::One]);
    let orphan = b.state("ORPHAN", vec![Tri::Zero]);
    b.transition(idle, &[(0, true)], run);
    b.transition(idle, &[], idle);
    b.transition(run, &[], idle);
    b.transition(run, &[(0, false)], run); // dead: shadowed above
    b.transition(orphan, &[], idle); // complete, but nothing enters ORPHAN
    b.finish().expect("fixture machine is transition-complete")
}

/// Lints both fixtures and returns the combined report. It always
/// contains at least an `unreachable-state` and a `combinational-loop`
/// error.
pub fn fixture_report() -> LintReport {
    let mut r = lint_fsm(&fixture_fsm());
    r.extend(lint_verilog(LOOPED_VERILOG));
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixture_trips_both_error_rules() {
        let r = fixture_report();
        assert!(r.error_count() >= 2, "report:\n{r}");
        let rules: Vec<&str> = r.diagnostics.iter().map(|d| d.rule).collect();
        assert!(rules.contains(&"unreachable-state"));
        assert!(rules.contains(&"combinational-loop"));
        assert!(rules.contains(&"dead-transition"));
        // Every diagnostic names a rule and a subject or span.
        for d in &r.diagnostics {
            assert!(!d.rule.is_empty());
            assert!(!d.location.subject.is_empty() || d.location.span.is_some());
        }
    }
}
