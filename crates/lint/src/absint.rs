//! Difference-domain abstract interpretation: a third static CFR proof.
//!
//! [`crate::constprop`] proves a fault harmless when its *site* never
//! moves; this pass proves faults harmless even when the site moves, by
//! tracking how far the disturbance can travel. Each net gets an
//! abstract *difference* between the faulty and fault-free machines,
//! quantified over the whole controller-table domain (every enumerated
//! state × every binary status):
//!
//! * `Equal` — the faulty value equals the fault-free value everywhere;
//! * `Inverted` — the faulty value is the complement everywhere;
//! * `Unknown` — no relation is proven.
//!
//! The lattice is seeded at the fault site from [`NetConstants`] (a
//! stuck output is `Inverted` when the fault-free net is provably the
//! complement constant) and pushed through the combinational topo order
//! with transfer rules that exploit two facts pure constant propagation
//! cannot:
//!
//! * **masking** — an AND/NAND/OR/NOR input that is `Equal` and
//!   provably constant at the gate's controlling value absorbs *any*
//!   difference on the other pins;
//! * **parity cancellation** — two `Inverted` inputs of an XOR/XNOR
//!   cancel: `!a ⊕ !b = a ⊕ b`.
//!
//! Buffers/inverters carry differences through; a single disturbed
//! input passes through an AND/OR whose other pins are `Equal` and
//! constant at the non-controlling value (the gate is transparent); a
//! MUX2 with an `Equal` constant select reduces to the selected leg.
//! Sequential gate outputs are `Equal` by construction — the table
//! domain clamps state identically in both machines.
//!
//! If every controller output net *and* every sequential-gate input net
//! ends `Equal`, no table evaluation can differ in any output or
//! next-state bit, so the fault is CFR by the same argument that makes
//! the exhaustive table analysis sound — this proof is a strict subset
//! of table-CFR, just computed without walking the table.

use crate::constprop::NetConstants;
use sfr_netlist::{CellKind, FaultSite, GateId, Netlist, StuckAt};

/// Abstract faulty-vs-fault-free relation on one net, over the whole
/// controller-table domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Diff {
    Equal,
    Inverted,
    Unknown,
}

/// Largest gate arity in the cell library (And4/Nand4/Or4/Nor4).
const MAX_PINS: usize = 4;

/// Outcome of one transfer: the output difference, plus whether the
/// XOR parity-cancellation rule fired (for attribution).
struct Transfer {
    out: Diff,
    parity: bool,
}

/// Tries to prove `fault` CFR by difference-domain abstract
/// interpretation over `nl` (standalone-controller coordinates, same as
/// [`crate::statically_cfr`]). Returns the rule that closed the proof:
/// [`ParityCancellation`](crate::StaticCfrReason::ParityCancellation)
/// when an XOR cancelled two inversions along the way,
/// [`MaskedPropagation`](crate::StaticCfrReason::MaskedPropagation)
/// otherwise. `None` means the disturbance may reach an output or a
/// flip-flop — which says nothing about the fault's real class.
pub fn absint_cfr(
    nl: &Netlist,
    constants: &NetConstants,
    fault: StuckAt,
) -> Option<crate::StaticCfrReason> {
    let n_nets = nl.net_ids().count();
    let mut diff = vec![Diff::Equal; n_nets];
    let mut used_parity = false;

    // Seed the lattice at the fault site. A stuck net carries the
    // constant `stuck` in the faulty machine; comparing against the
    // fault-free constancy verdict classifies the seed.
    let seed_from_forced = |net_const: Option<bool>, forced: bool| match net_const {
        Some(v) if v == forced => Diff::Equal,
        Some(_) => Diff::Inverted,
        None => Diff::Unknown,
    };
    let skip: Option<GateId> = match fault.site {
        FaultSite::GateOutput { gate } => {
            let g = nl.gate(gate);
            // A stuck flop output changes machine state, which the
            // table domain treats as an independent input — out of
            // scope for this dataflow argument.
            if g.kind().is_sequential() {
                return None;
            }
            let out = g.output();
            diff[out.index()] = seed_from_forced(constants.constant_everywhere(out), fault.stuck);
            Some(gate)
        }
        FaultSite::GateInput { gate, pin } => {
            let g = nl.gate(gate);
            if g.kind().is_sequential() {
                // A disturbed data/enable pin changes next-state.
                return None;
            }
            let out = g.output();
            diff[out.index()] = match forced_output_for_pin(g.kind(), fault.stuck) {
                // The stuck pin value forces the gate output to a
                // constant; compare against the fault-free output.
                Some(w) => seed_from_forced(constants.constant_everywhere(out), w),
                None => match g.kind() {
                    // A non-forcing pin of XOR/XNOR whose fault-free
                    // driver is provably the complement constant acts
                    // as a pin inverter: the output inverts everywhere.
                    CellKind::Xor2 | CellKind::Xnor2
                        if constants.constant_everywhere(g.inputs()[pin]) == Some(!fault.stuck) =>
                    {
                        Diff::Inverted
                    }
                    _ => Diff::Unknown,
                },
            };
            Some(gate)
        }
        FaultSite::PrimaryInput { net } => {
            diff[net.index()] = seed_from_forced(constants.constant_everywhere(net), fault.stuck);
            None
        }
    };

    // Push differences through the combinational evaluation order.
    // Sequential gates are absent from `topo_order` and their outputs
    // stay `Equal` (state is clamped identically in both machines).
    for &g in nl.topo_order() {
        if skip == Some(g) {
            continue; // the seed already accounts for this gate
        }
        let gate = nl.gate(g);
        let mut ins = [Diff::Equal; MAX_PINS];
        let mut consts = [None; MAX_PINS];
        for (k, &n) in gate.inputs().iter().enumerate() {
            ins[k] = diff[n.index()];
            consts[k] = constants.constant_everywhere(n);
        }
        let n_ins = gate.inputs().len();
        let t = transfer(gate.kind(), &ins[..n_ins], &consts[..n_ins]);
        used_parity |= t.parity;
        diff[gate.output().index()] = t.out;
    }

    // CFR iff nothing the table analysis observes can differ: every
    // controller output net and every flip-flop input net is `Equal`.
    let clean = nl.outputs().iter().all(|&n| diff[n.index()] == Diff::Equal)
        && nl.sequential_gates().iter().all(|&g| {
            nl.gate(g)
                .inputs()
                .iter()
                .all(|&n| diff[n.index()] == Diff::Equal)
        });
    clean.then_some(if used_parity {
        crate::StaticCfrReason::ParityCancellation
    } else {
        crate::StaticCfrReason::MaskedPropagation
    })
}

/// The constant a gate's output is forced to when one input pin is
/// stuck at `v` — `None` when `v` is not a forcing value for `kind`.
fn forced_output_for_pin(kind: CellKind, v: bool) -> Option<bool> {
    use CellKind::*;
    match kind {
        Buf => Some(v),
        Inv => Some(!v),
        And2 | And3 | And4 if !v => Some(false),
        Nand2 | Nand3 | Nand4 if !v => Some(true),
        Or2 | Or3 | Or4 if v => Some(true),
        Nor2 | Nor3 | Nor4 if v => Some(false),
        _ => None,
    }
}

/// One gate's abstract transfer: given per-input differences and
/// fault-free constancy verdicts, the output difference.
fn transfer(kind: CellKind, ins: &[Diff], consts: &[Option<bool>]) -> Transfer {
    use CellKind::*;
    let no = |out: Diff| Transfer { out, parity: false };
    if ins.iter().all(|&d| d == Diff::Equal) {
        return no(Diff::Equal);
    }
    match kind {
        Buf => no(ins[0]),
        // An inverter of an everywhere-inverted signal is itself
        // everywhere-inverted relative to the fault-free machine.
        Inv => no(ins[0]),
        Xor2 | Xnor2 => {
            if ins.contains(&Diff::Unknown) {
                return no(Diff::Unknown);
            }
            let inverted = ins.iter().filter(|&&d| d == Diff::Inverted).count();
            if inverted % 2 == 0 {
                // Two inversions cancel: !a ⊕ !b = a ⊕ b.
                Transfer {
                    out: Diff::Equal,
                    parity: true,
                }
            } else {
                no(Diff::Inverted)
            }
        }
        And2 | And3 | And4 | Nand2 | Nand3 | Nand4 | Or2 | Or3 | Or4 | Nor2 | Nor3 | Nor4 => {
            let controlling = matches!(kind, Or2 | Or3 | Or4 | Nor2 | Nor3 | Nor4);
            // Masking: an undisturbed pin pinned at the controlling
            // value decides the output in both machines.
            if ins
                .iter()
                .zip(consts)
                .any(|(&d, &c)| d == Diff::Equal && c == Some(controlling))
            {
                return no(Diff::Equal);
            }
            // Transparency: one disturbed pin, every other pin
            // undisturbed and pinned non-controlling — the gate is a
            // buffer (or inverter) of the disturbed pin.
            let disturbed: Vec<usize> = (0..ins.len()).filter(|&k| ins[k] != Diff::Equal).collect();
            if let [only] = disturbed[..] {
                let others_transparent = (0..ins.len())
                    .filter(|&k| k != only)
                    .all(|k| ins[k] == Diff::Equal && consts[k] == Some(!controlling));
                if others_transparent {
                    return no(ins[only]);
                }
            }
            no(Diff::Unknown)
        }
        Mux2 => {
            let (a, b, sel) = (ins[0], ins[1], ins[2]);
            if sel == Diff::Equal {
                match consts[2] {
                    Some(false) => no(a),
                    Some(true) => no(b),
                    // Varying select picks the same leg in both
                    // machines; the output difference is whatever both
                    // legs agree on.
                    None if a == b => no(a),
                    None => no(Diff::Unknown),
                }
            } else if ins[0] == Diff::Equal
                && ins[1] == Diff::Equal
                && consts[0].is_some()
                && consts[0] == consts[1]
            {
                // Both legs undisturbed and provably the same constant:
                // the (disturbed) choice is immaterial.
                no(Diff::Equal)
            } else {
                no(Diff::Unknown)
            }
        }
        Const0 | Const1 => no(Diff::Equal),
        // Unreachable: sequential gates are absent from `topo_order`.
        Dff | Dffe => no(Diff::Equal),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cfr::analyze_controller_static;
    use crate::StaticCfrReason;
    use sfr_faultsim::fixtures::toy_system;
    use sfr_netlist::NetlistBuilder;

    /// Doctors the toy controller with extra logic rooted at a state
    /// bit and returns (system, ids of the added gates).
    fn doctored(
        build: impl FnOnce(&mut NetlistBuilder, sfr_netlist::NetId) -> Vec<usize>,
    ) -> (sfr_faultsim::System, Vec<GateId>) {
        let mut sys = toy_system();
        let mut b = NetlistBuilder::from_netlist(&sys.ctrl_netlist);
        let probe = sys.ctrl_standalone.state_nets[0];
        let offsets = build(&mut b, probe);
        let base = sys.ctrl_netlist.gate_count();
        sys.ctrl_netlist = b.finish().expect("doctored netlist is valid");
        let ids = offsets
            .into_iter()
            .map(|k| GateId::from_index(base + k))
            .collect();
        (sys, ids)
    }

    #[test]
    fn masked_disturbance_is_proven_cfr() {
        // probe → inv → AND(·, const0) → xor-mixed into nothing: the
        // AND's const-0 side masks any disturbance on the inv.
        let (sys, ids) = doctored(|b, probe| {
            let zero = b.gate_net(CellKind::Const0, "k0", &[]);
            let n1 = b.gate_net(CellKind::Inv, "ai_inv", &[probe]);
            let n2 = b.gate_net(CellKind::And2, "ai_and", &[n1, zero]);
            // Keep the cone alive: feed an output-reaching XOR would
            // change outputs; instead leave n2 dangling — but then the
            // dead-cone rule fires first. Route it into a second AND
            // masked again so the cone stays "live" via the mask gate.
            let _n3 = b.gate_net(CellKind::Buf, "ai_buf", &[n2]);
            vec![1]
        });
        let analysis = analyze_controller_static(&sys);
        let inv = ids[0];
        for stuck in [false, true] {
            let f = StuckAt::output(inv, stuck);
            // The inverter's output varies with the state bit, so
            // constprop alone cannot decide it; the mask can.
            let v = absint_cfr(&sys.ctrl_netlist, &analysis.constants, f);
            assert_eq!(v, Some(StaticCfrReason::MaskedPropagation), "sa{stuck}");
        }
    }

    #[test]
    fn parity_cancellation_is_proven_cfr() {
        // probe feeds both XOR pins through an inverter pair: stuck
        // inverter output inverts both pins — the XOR cancels it.
        //
        //   probe → invA ─┬─────────────→ xor ─→ and(·,0) → buf
        //                 └→ invB → invC ─↑
        //
        // A fault on invA inverts pin0 directly and pin1 through the
        // invB/invC chain; the XOR output stays Equal everywhere. The
        // const-0 AND keeps the cone from being dead without letting
        // anything reach an output.
        let (sys, ids) = doctored(|b, probe| {
            let zero = b.gate_net(CellKind::Const0, "k0", &[]);
            let na = b.gate_net(CellKind::Inv, "pa_a", &[probe]);
            let nb = b.gate_net(CellKind::Inv, "pa_b", &[na]);
            let nc = b.gate_net(CellKind::Inv, "pa_c", &[nb]);
            let nx = b.gate_net(CellKind::Xor2, "pa_x", &[na, nc]);
            let nm = b.gate_net(CellKind::And2, "pa_m", &[nx, zero]);
            let _ = b.gate_net(CellKind::Buf, "pa_o", &[nm]);
            vec![1]
        });
        let analysis = analyze_controller_static(&sys);
        let inv_a = ids[0];
        for stuck in [false, true] {
            let f = StuckAt::output(inv_a, stuck);
            let v = absint_cfr(&sys.ctrl_netlist, &analysis.constants, f);
            // The fault forces na constant; na is not provably constant
            // fault-free (it follows the state bit), so the seed is
            // Unknown on na — both XOR pins go Unknown and the mask
            // still closes the proof. Parity kicks in only when the
            // seed is Inverted; either reason proves CFR.
            assert!(v.is_some(), "sa{stuck} must be proven CFR");
        }
    }

    #[test]
    fn parity_reason_is_attributed() {
        // Force a provable inversion seed: a const-1 net stuck at 0.
        //
        //   k1 ─┬──────────→ xor ─→ and(·,0) → buf
        //       └→ inv → inv ─↑
        //
        // k1.out/sa0 seeds Inverted (fault-free constant 1, stuck 0);
        // both XOR pins arrive Inverted and cancel.
        let (sys, ids) = doctored(|b, _probe| {
            let zero = b.gate_net(CellKind::Const0, "k0", &[]);
            let one = b.gate_net(CellKind::Const1, "k1", &[]);
            let na = b.gate_net(CellKind::Inv, "pr_a", &[one]);
            let nb = b.gate_net(CellKind::Inv, "pr_b", &[na]);
            let nx = b.gate_net(CellKind::Xor2, "pr_x", &[one, nb]);
            let nm = b.gate_net(CellKind::And2, "pr_m", &[nx, zero]);
            let _ = b.gate_net(CellKind::Buf, "pr_o", &[nm]);
            vec![1]
        });
        let analysis = analyze_controller_static(&sys);
        let k1 = ids[0];
        let f = StuckAt::output(k1, false);
        let v = absint_cfr(&sys.ctrl_netlist, &analysis.constants, f);
        assert_eq!(v, Some(StaticCfrReason::ParityCancellation));
    }

    #[test]
    fn reaching_disturbances_are_not_claimed() {
        // Nothing in the exactly-minimized toy controller is absint-CFR.
        let sys = toy_system();
        let analysis = analyze_controller_static(&sys);
        for g in sys.ctrl_netlist.gate_ids() {
            for stuck in [false, true] {
                let f = StuckAt::output(g, stuck);
                assert_eq!(
                    absint_cfr(&sys.ctrl_netlist, &analysis.constants, f),
                    None,
                    "{f} wrongly proven CFR"
                );
            }
        }
    }

    #[test]
    fn absint_claims_are_table_cfr() {
        // Every absint claim on a doctored controller must agree with
        // the behaviour the exhaustive table would find: the claim set
        // is validated end-to-end by classify's static_prune
        // bit-identity tests; here we check the structural invariant
        // that no claimed fault sits on a sequential gate.
        let (sys, _) = doctored(|b, probe| {
            let zero = b.gate_net(CellKind::Const0, "k0", &[]);
            let n1 = b.gate_net(CellKind::Inv, "t_inv", &[probe]);
            let n2 = b.gate_net(CellKind::And2, "t_and", &[n1, zero]);
            let _ = b.gate_net(CellKind::Buf, "t_buf", &[n2]);
            vec![]
        });
        let analysis = analyze_controller_static(&sys);
        for g in sys.ctrl_netlist.gate_ids() {
            for pin in 0..sys.ctrl_netlist.gate(g).inputs().len() {
                for stuck in [false, true] {
                    let f = StuckAt::input(g, pin, stuck);
                    if absint_cfr(&sys.ctrl_netlist, &analysis.constants, f).is_some() {
                        assert!(!sys.ctrl_netlist.gate(g).kind().is_sequential());
                    }
                }
            }
        }
    }
}
