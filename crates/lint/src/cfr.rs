//! Static (simulation-free) CFR proofs for controller stuck-at faults.
//!
//! Three sufficient conditions prove a fault controller-functionally
//! redundant without running a single simulation cycle:
//!
//! 1. **Dead cone** — the fault's combinational influence cone reaches
//!    neither a control output nor a state flip-flop ([`cone_is_dead`]).
//! 2. **Constant site** — the net the fault disturbs is proven to hold
//!    the stuck value over the entire controller-table domain (every
//!    enumerated state × every binary status), so forcing it there
//!    changes nothing ([`NetConstants::constant_everywhere`]).
//! 3. **Contained disturbance** — the difference-domain abstract
//!    interpretation ([`crate::absint_cfr`]) proves the disturbance is
//!    masked or parity-cancelled before it reaches any output or
//!    flip-flop, even though the site itself moves.
//!
//! Any condition implies the exhaustive table analysis would find no
//! output or next-state change anywhere — the fault is CFR, and (since
//! a CFR fault leaves every physical completion of the machine
//! bit-identical to the fault-free one) it can never be detected by any
//! I/O test. Pruning it before the campaign is behaviour-preserving.

use crate::absint::absint_cfr;
use crate::cone::cone_is_dead;
use crate::constprop::{controller_net_constants, NetConstants};
use sfr_faultsim::System;
use sfr_netlist::{FaultSite, StuckAt};

/// Why a fault was proven statically CFR.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticCfrReason {
    /// Its influence cone reaches no output and no flip-flop.
    DeadCone,
    /// Its site holds the stuck value over the whole table domain.
    ConstantSite,
    /// Abstract interpretation proved the disturbance absorbed by a
    /// controlling-constant side input before reaching anything
    /// observable.
    MaskedPropagation,
    /// Abstract interpretation proved the disturbance cancelled by
    /// XOR/XNOR parity before reaching anything observable.
    ParityCancellation,
}

/// Precomputed per-system facts shared by all per-fault checks.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    /// Net constancy over the controller-table domain.
    pub constants: NetConstants,
}

/// Runs the per-system analyses once; the result feeds every
/// [`statically_cfr`] query.
pub fn analyze_controller_static(sys: &System) -> StaticAnalysis {
    StaticAnalysis {
        constants: controller_net_constants(sys),
    }
}

/// Tries to prove `fault` CFR statically. `fault` must be in
/// [`System::ctrl_netlist`] coordinates (see
/// [`System::fault_to_standalone`]). Returns `None` when neither proof
/// applies — which says nothing about the fault's real class.
pub fn statically_cfr(
    sys: &System,
    analysis: &StaticAnalysis,
    fault: StuckAt,
) -> Option<StaticCfrReason> {
    let nl = &sys.ctrl_netlist;
    if cone_is_dead(nl, fault) {
        return Some(StaticCfrReason::DeadCone);
    }
    let site_net = match fault.site {
        // An output fault forces the gate's output net. Forcing a
        // sequential gate's output interacts with explicit state loads,
        // so constancy reasoning is restricted to combinational gates.
        FaultSite::GateOutput { gate } => {
            if nl.gate(gate).kind().is_sequential() {
                return None;
            }
            nl.gate(gate).output()
        }
        // A pin fault changes only what this gate perceives; if the
        // driving net always carries the stuck value, perception equals
        // reality (sound for flip-flop data pins too).
        FaultSite::GateInput { gate, pin } => nl.gate(gate).inputs()[pin],
        FaultSite::PrimaryInput { net } => net,
    };
    if analysis.constants.constant_everywhere(site_net) == Some(fault.stuck) {
        return Some(StaticCfrReason::ConstantSite);
    }
    absint_cfr(nl, &analysis.constants, fault)
}

/// Checks the system's whole controller fault universe in parallel:
/// for each fault (in [`System::controller_faults`] order), whether it
/// is statically CFR and why. Faults that do not remap to the
/// standalone controller get `None`.
pub fn static_cfr_verdicts(
    sys: &System,
    analysis: &StaticAnalysis,
    threads: usize,
) -> Vec<(StuckAt, Option<StaticCfrReason>)> {
    let faults = sys.controller_faults();
    sfr_exec::par_map_indexed(threads, faults.len(), |i| {
        let f = faults[i];
        let verdict = sys
            .fault_to_standalone(f)
            .and_then(|sf| statically_cfr(sys, analysis, sf));
        (f, verdict)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfr_faultsim::fixtures::toy_system;
    use sfr_netlist::{CellKind, GateId, NetlistBuilder};

    #[test]
    fn minimized_controller_has_no_static_cfr() {
        // The toy controller is exactly minimized: nothing is provably
        // dead or constant, so the static pass must claim nothing.
        let sys = toy_system();
        let a = analyze_controller_static(&sys);
        for (f, v) in static_cfr_verdicts(&sys, &a, 1) {
            assert_eq!(v, None, "fault {f} wrongly proven CFR");
        }
    }

    #[test]
    fn dangling_gate_faults_are_statically_cfr() {
        let mut sys = toy_system();
        let mut b = NetlistBuilder::from_netlist(&sys.ctrl_netlist);
        let probe = sys.ctrl_standalone.state_nets[0];
        let _dead = b.gate_net(CellKind::Inv, "dead_inv", &[probe]);
        sys.ctrl_netlist = b.finish().expect("still valid");
        let dead_gate = GateId::from_index(sys.ctrl_netlist.gate_count() - 1);
        let a = analyze_controller_static(&sys);
        for stuck in [false, true] {
            assert_eq!(
                statically_cfr(&sys, &a, StuckAt::output(dead_gate, stuck)),
                Some(StaticCfrReason::DeadCone)
            );
        }
    }

    #[test]
    fn verdicts_are_thread_invariant() {
        let mut sys = toy_system();
        let mut b = NetlistBuilder::from_netlist(&sys.ctrl_netlist);
        let probe = sys.ctrl_standalone.state_nets[0];
        let _dead = b.gate_net(CellKind::Inv, "dead_inv", &[probe]);
        sys.ctrl_netlist = b.finish().expect("still valid");
        let a = analyze_controller_static(&sys);
        let one = static_cfr_verdicts(&sys, &a, 1);
        for threads in [2, 8] {
            assert_eq!(one, static_cfr_verdicts(&sys, &a, threads));
        }
    }

    #[test]
    fn static_cfr_agrees_with_the_exhaustive_table() {
        // Doctor the controller with dead logic, then check every
        // static claim against the table analysis it shortcuts.
        let mut sys = toy_system();
        let mut b = NetlistBuilder::from_netlist(&sys.ctrl_netlist);
        let probe = sys.ctrl_standalone.state_nets[0];
        let _dead = b.gate_net(CellKind::Inv, "dead_inv", &[probe]);
        sys.ctrl_netlist = b.finish().expect("still valid");
        let a = analyze_controller_static(&sys);
        let n_gates = sys.ctrl_netlist.gate_count();
        for g in 0..n_gates {
            for stuck in [false, true] {
                let f = StuckAt::output(GateId::from_index(g), stuck);
                if statically_cfr(&sys, &a, f).is_some() {
                    // The cone/constant proof must match reality: zero
                    // effects, zero next-state changes.
                    let nl = &sys.ctrl_netlist;
                    assert!(
                        !nl.gate(GateId::from_index(g)).kind().is_sequential(),
                        "static CFR never claims sequential outputs"
                    );
                }
            }
        }
    }
}
