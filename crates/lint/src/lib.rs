//! Simulation-free structural analysis of controller–datapath systems.
//!
//! Two capabilities, one crate:
//!
//! * **Static fault pruning** — prove controller stuck-at faults
//!   controller-functionally redundant without simulation, via fanout
//!   cone-of-influence analysis ([`cone_is_dead`]) and ternary constant
//!   propagation from the enumerated FSM state encodings
//!   ([`controller_net_constants`]). The campaign pre-pass
//!   (`ClassifyConfig::static_prune` in `sfr-classify`) builds on these
//!   proofs; pruned campaigns are bit-identical to unpruned ones.
//! * **Design linting** — a rule suite over the FSM specification, the
//!   HLS schedule, and the gate-level netlist ([`lint_system`],
//!   [`lint_verilog`]), emitting structured [`Diagnostic`]s with rule
//!   ids, severities, and source spans where the design came from text.
//!
//! The rule catalogue is documented on [`rules`] (module docs).
//!
//! # Examples
//!
//! ```
//! use sfr_lint::{fixture_report, Severity};
//!
//! let report = fixture_report();
//! assert!(report.error_count() >= 2); // unreachable state + comb loop
//! assert!(report.diagnostics.iter().any(|d| d.severity == Severity::Error));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

mod absint;
mod cfr;
mod cone;
mod constprop;
mod diag;
mod fixture;
pub mod rules;

pub use absint::absint_cfr;
pub use cfr::{
    analyze_controller_static, static_cfr_verdicts, statically_cfr, StaticAnalysis, StaticCfrReason,
};
pub use cone::cone_is_dead;
pub use constprop::{controller_net_constants, NetConstants};
pub use diag::{Diagnostic, LintReport, Location, Severity};
pub use fixture::{fixture_fsm, fixture_report, LOOPED_VERILOG};
pub use rules::{lint_fsm, lint_netlist, lint_schedule, lint_system, lint_verilog};
