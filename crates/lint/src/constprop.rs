//! Ternary constant propagation over the standalone controller.
//!
//! The controller table's evaluation domain is finite: every enumerated
//! FSM state code crossed with every binary status assignment. A net
//! holding the same value over that whole domain is *proven constant* —
//! a stuck-at fault forcing it to that value is a no-op in every table
//! evaluation, hence statically CFR.
//!
//! Constants are found in two passes. A cheap ternary pass evaluates
//! each state once with all status inputs `X`: a definite value under
//! `X` inputs is, by the monotonicity of three-valued simulation, the
//! value under *every* binary status. Nets the ternary pass leaves
//! undecided are resolved by the exact binary sweep (the same domain
//! the exhaustive table analysis walks).

use sfr_faultsim::System;
use sfr_netlist::{CycleSim, Logic, NetId};

/// Per-net constancy verdicts over the controller-table domain.
#[derive(Debug, Clone)]
pub struct NetConstants {
    all_states: Vec<Option<bool>>,
    reachable: Vec<Option<bool>>,
}

impl NetConstants {
    /// The net's proven-constant value over *every* enumerated state ×
    /// binary status evaluation, or `None` if it varies. This is the
    /// domain the exhaustive table analysis quantifies over, so it is
    /// the sound basis for static fault pruning.
    pub fn constant_everywhere(&self, net: NetId) -> Option<bool> {
        self.all_states[net.index()]
    }

    /// The net's proven-constant value when the state range is
    /// restricted to states reachable from reset — the meaningful
    /// domain for reporting stuck nets to a designer.
    pub fn constant_reachable(&self, net: NetId) -> Option<bool> {
        self.reachable[net.index()]
    }
}

/// One net's accumulated observations.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Obs {
    Unset,
    Const(bool),
    Varies,
}

impl Obs {
    fn merge(&mut self, v: bool) {
        *self = match *self {
            Obs::Unset => Obs::Const(v),
            Obs::Const(c) if c == v => Obs::Const(c),
            _ => Obs::Varies,
        };
    }

    fn verdict(self) -> Option<bool> {
        match self {
            Obs::Const(v) => Some(v),
            _ => None,
        }
    }
}

/// Computes every controller net's constancy over the table domain.
pub fn controller_net_constants(sys: &System) -> NetConstants {
    let nl = &sys.ctrl_netlist;
    let spec = sys.fsm.spec();
    let n_status = spec.n_status();
    let reachable = spec.reachable_states();
    let n_nets = nl.net_ids().count();
    let mut sim = CycleSim::new(nl);

    let mut all = vec![Obs::Unset; n_nets];
    let mut reach = vec![Obs::Unset; n_nets];
    // Nets some ternary evaluation left at X; only these need the
    // binary sweep.
    let mut undecided = vec![false; n_nets];

    let load_state = |sim: &mut CycleSim<'_>, code: u32| {
        for (k, &g) in sys.ctrl_standalone.state_gates.iter().enumerate() {
            sim.set_state(g, Logic::from_bool(code >> k & 1 == 1));
        }
    };

    // Ternary pass: one evaluation per state, statuses unknown.
    let x_status = vec![Logic::X; n_status];
    for s in spec.states() {
        load_state(&mut sim, sys.fsm.code(s));
        sim.set_inputs(&x_status);
        sim.eval();
        for net in nl.net_ids() {
            match sim.value(net).to_bool() {
                Some(v) => {
                    all[net.index()].merge(v);
                    if reachable[s.0] {
                        reach[net.index()].merge(v);
                    }
                }
                None => undecided[net.index()] = true,
            }
        }
    }

    // Binary sweep for the status-dependent nets.
    if undecided.iter().any(|&u| u) {
        for s in spec.states() {
            for status in 0..(1u32 << n_status) {
                load_state(&mut sim, sys.fsm.code(s));
                let bits: Vec<Logic> = (0..n_status)
                    .map(|i| Logic::from_bool(status >> i & 1 == 1))
                    .collect();
                sim.set_inputs(&bits);
                sim.eval();
                for net in nl.net_ids() {
                    if !undecided[net.index()] {
                        continue;
                    }
                    let v = sim
                        .value(net)
                        .to_bool()
                        .expect("fully binary evaluation yields known values");
                    all[net.index()].merge(v);
                    if reachable[s.0] {
                        reach[net.index()].merge(v);
                    }
                }
            }
        }
    }

    NetConstants {
        all_states: all.into_iter().map(Obs::verdict).collect(),
        reachable: reach.into_iter().map(Obs::verdict).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> System {
        sfr_faultsim::fixtures::toy_system()
    }

    #[test]
    fn control_outputs_match_realized_tables() {
        // A control line constant across all states in the realized
        // table must be reported constant, and a line that changes
        // between states must not be.
        let sys = toy();
        let c = controller_net_constants(&sys);
        let spec = sys.fsm.spec();
        for (j, &net) in sys.ctrl_standalone.output_nets.iter().enumerate() {
            let column: Vec<bool> = spec
                .states()
                .map(|s| sys.ctrl.realized_outputs[s.0][j])
                .collect();
            let uniform = column.iter().all(|&v| v == column[0]);
            match c.constant_everywhere(net) {
                Some(v) => {
                    assert!(uniform, "line {j} reported constant but its table varies");
                    assert_eq!(v, column[0]);
                }
                None => assert!(!uniform, "line {j} is uniform but not reported constant"),
            }
        }
    }

    #[test]
    fn state_nets_vary() {
        // State bits take different values across enumerated states, so
        // no state net may be constant (the toy FSM needs >1 state).
        let sys = toy();
        let c = controller_net_constants(&sys);
        assert!(sys.fsm.spec().state_count() > 1);
        let varying = sys
            .ctrl_standalone
            .state_nets
            .iter()
            .filter(|&&n| c.constant_everywhere(n).is_none())
            .count();
        assert!(varying > 0, "some state bit must vary across states");
    }

    #[test]
    fn reachable_domain_is_at_least_as_constant() {
        let sys = toy();
        let c = controller_net_constants(&sys);
        for net in sys.ctrl_netlist.net_ids() {
            if let Some(v) = c.constant_everywhere(net) {
                assert_eq!(
                    c.constant_reachable(net),
                    Some(v),
                    "constant-everywhere must imply constant-on-reachable"
                );
            }
        }
    }
}
