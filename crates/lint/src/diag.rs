//! Structured lint diagnostics: rule ids, severities, locations.

use std::fmt;

/// How serious a diagnostic is.
///
/// `Error` marks a structural defect (the design cannot mean what it
/// says); `Warning` marks redundancy that synthesis or an ECO probably
/// left behind; `Info` marks expected don't-care slack (paper §3.1) that
/// the fault analysis exploits rather than forbids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Expected slack, reported for visibility.
    Info,
    /// Likely-unintended redundancy.
    Warning,
    /// A structural defect.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        };
        write!(f, "{s}")
    }
}

/// Where a diagnostic points.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Location {
    /// The net, cell, state, or register the rule fired on.
    pub subject: String,
    /// 1-based source (line, column), when the design came from text
    /// with recorded spans ([`sfr_netlist::SourceSpans`]).
    pub span: Option<(usize, usize)>,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.span {
            Some((line, col)) => write!(f, "{}:{line}:{col}", self.subject),
            None => write!(f, "{}", self.subject),
        }
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable rule identifier, e.g. `unreachable-state`.
    pub rule: &'static str,
    /// How serious it is.
    pub severity: Severity,
    /// What the rule fired on.
    pub location: Location,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.rule, self.location, self.message
        )
    }
}

/// The result of a lint run: every diagnostic, in rule order.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// All findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// An empty report.
    pub fn new() -> Self {
        LintReport::default()
    }

    /// Appends a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Merges another report's findings into this one.
    pub fn extend(&mut self, other: LintReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of `Error`-severity findings.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// Whether the report is clean at `Error` severity.
    pub fn is_error_free(&self) -> bool {
        self.error_count() == 0
    }

    /// Canonicalizes the report for stable CI diffing: diagnostics are
    /// sorted by (severity descending, rule, subject, span, message)
    /// and exact repeats of the same rule id at the same location are
    /// emitted once. The sort is total, so two reports over the same
    /// design render byte-identically regardless of rule evaluation
    /// order.
    pub fn normalize(&mut self) {
        self.diagnostics.sort_by(|a, b| {
            b.severity
                .cmp(&a.severity)
                .then_with(|| a.rule.cmp(b.rule))
                .then_with(|| a.location.subject.cmp(&b.location.subject))
                .then_with(|| a.location.span.cmp(&b.location.span))
                .then_with(|| a.message.cmp(&b.message))
        });
        self.diagnostics
            .dedup_by(|a, b| a.rule == b.rule && a.location == b.location);
    }
}

impl fmt::Display for LintReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for d in &self.diagnostics {
            writeln!(f, "{d}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_prints() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn diagnostics_render_rule_and_location() {
        let d = Diagnostic {
            rule: "constant-net",
            severity: Severity::Warning,
            location: Location {
                subject: "x".into(),
                span: Some((7, 3)),
            },
            message: "net is stuck at 0".into(),
        };
        assert_eq!(
            d.to_string(),
            "warning[constant-net] x:7:3: net is stuck at 0"
        );
    }

    #[test]
    fn report_counts_by_severity() {
        let mut r = LintReport::new();
        assert!(r.is_error_free());
        r.push(Diagnostic {
            rule: "a",
            severity: Severity::Error,
            location: Location::default(),
            message: String::new(),
        });
        r.push(Diagnostic {
            rule: "b",
            severity: Severity::Info,
            location: Location::default(),
            message: String::new(),
        });
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.count(Severity::Info), 1);
        assert!(!r.is_error_free());
    }

    #[test]
    fn normalize_dedupes_and_stable_sorts() {
        let at = |subject: &str, span| Location {
            subject: subject.into(),
            span,
        };
        let d = |rule, severity, location: Location, message: &str| Diagnostic {
            rule,
            severity,
            location,
            message: message.into(),
        };
        let mut r = LintReport::new();
        r.push(d("b-rule", Severity::Info, at("n2", None), "later"));
        r.push(d(
            "a-rule",
            Severity::Warning,
            at("n1", Some((3, 1))),
            "dup",
        ));
        r.push(d(
            "a-rule",
            Severity::Warning,
            at("n1", Some((3, 1))),
            "dup",
        ));
        r.push(d("a-rule", Severity::Error, at("n0", None), "first"));
        // Same rule, different span: both survive.
        r.push(d(
            "a-rule",
            Severity::Warning,
            at("n1", Some((9, 1))),
            "dup",
        ));
        r.normalize();
        let rendered: Vec<String> = r.diagnostics.iter().map(|d| d.to_string()).collect();
        assert_eq!(
            rendered,
            vec![
                "error[a-rule] n0: first",
                "warning[a-rule] n1:3:1: dup",
                "warning[a-rule] n1:9:1: dup",
                "info[b-rule] n2: later",
            ]
        );
        // Idempotent: a second pass changes nothing.
        let before = r.diagnostics.clone();
        r.normalize();
        assert_eq!(before, r.diagnostics);
    }
}
