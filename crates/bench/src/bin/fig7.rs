//! Regenerates **Figure 7(a,b,c)**: the effect of SFR faults within the
//! controller on datapath power for all three 4-bit examples — one point
//! per SFR fault (select-line-only faults left, load-line faults right,
//! each group sorted by power) against the fault-free line and the ±5%
//! tolerance band.
//!
//! Emits an ASCII rendition per circuit plus a CSV block for external
//! plotting. Run with `cargo run --release -p sfr-bench --bin fig7`.

#![allow(clippy::unwrap_used)]

use sfr_bench::{paper_config, report_counters, threads_from_args, ObsArgs};
use sfr_core::exec::{Counters, Tee};
use sfr_core::{benchmarks, Fig7Series, StudyBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = paper_config();
    let threads = threads_from_args();
    // One trace/metrics file spans all three benchmark studies.
    let obs = ObsArgs::from_env()?;
    println!("Figure 7: SFR controller faults vs datapath power (±5% band).");
    println!();
    let labels = ["(a) diffeq", "(b) facet", "(c) poly"];
    for ((name, emitted), label) in benchmarks::all_benchmarks(4)?.into_iter().zip(labels) {
        eprintln!("grading {name} on {threads} thread(s) (lane-packed Monte Carlo)...");
        let counters = Counters::new();
        let sinks = obs.sinks(&counters);
        let tee = Tee::new(&sinks);
        let study = StudyBuilder::from_emitted(name, emitted)
            .config(cfg.clone())
            .threads(threads)
            .build()?
            .run_with(&tee);
        drop(sinks);
        report_counters(&counters);
        let fig = Fig7Series::from_study(&study, cfg.grade.threshold_pct);
        println!("{label}");
        print!("{}", fig.render_ascii(21));
        println!();
        println!("--- CSV ({name}) ---");
        print!("{}", fig.render_csv());
        println!();
    }
    obs.finish()?;
    println!("Paper shapes to compare against:");
    println!(" - all select-only faults fall inside the ±5% band (small, either sign);");
    println!(" - load-line faults only ever increase power;");
    println!(" - diffeq: 15/18 load faults detected; facet: 26/30 (shared lines ⇒ big");
    println!("   effects); poly: 4/12 (long lifespans ⇒ few harmless loads, small effects).");
    Ok(())
}
