//! Regenerates the **Section 4 worst-case experiment**: add as many
//! control line effects as possible to the differential equation solver
//! while keeping the computation intact, and measure the power increase
//! (the paper reports over 200%).
//!
//! Run with `cargo run --release -p sfr-bench --bin worstcase`.

#![allow(clippy::unwrap_used)]

use sfr_bench::{paper_config, threads_from_args, ObsArgs};
use sfr_core::exec::{Counters, Progress, Tee, TraceRecord};
use sfr_core::{benchmarks, worst_case_extra_effects, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = paper_config();
    let threads = threads_from_args();
    let counters = Counters::new();
    let obs = ObsArgs::from_env()?;
    let sinks = obs.sinks(&counters);
    let tee = Tee::new(&sinks);
    let start = std::time::Instant::now();
    println!("Worst-case non-disruptive control line effects (paper Section 4).");
    println!();
    // The three benchmarks are independent experiments; shard across
    // them and print in benchmark order.
    let built: Vec<(&str, System)> = benchmarks::all_benchmarks(4)?
        .into_iter()
        .map(|(name, emitted)| Ok((name, System::build(&emitted, cfg.system)?)))
        .collect::<Result<_, sfr_core::NetlistError>>()?;
    let results = sfr_core::exec::par_map_indexed(threads, built.len(), |i| {
        worst_case_extra_effects(&built[i].1, &cfg.grade)
    });
    for ((name, _), wc) in built.iter().zip(&results) {
        if tee.wants_records() {
            tee.record(&TraceRecord::Note {
                text: format!(
                    "worstcase {name}: {} extra loads, {} select flips, {:+.1}% power",
                    wc.extra_loads,
                    wc.select_flips,
                    wc.pct_increase()
                ),
            });
        }
        println!(
            "{name:<8} extra loads: {:>3}  select flips: {:>2}  power {:>8.2} -> {:>8.2} uW  ({:+.1}%)",
            wc.extra_loads,
            wc.select_flips,
            wc.baseline.total_uw,
            wc.worst.total_uw,
            wc.pct_increase()
        );
    }
    println!();
    println!("The paper reports >200% for diffeq — a worst case only multiple");
    println!("simultaneous faults could cause, but an upper bound on the power a");
    println!("defective controller can silently waste.");
    drop(sinks);
    obs.finish()?;
    eprintln!(
        "worst-case search over all three benchmarks took {:.2} s on {threads} thread(s)",
        start.elapsed().as_secs_f64()
    );
    Ok(())
}
