//! Regenerates **Table 3**: power in the presence of SFR faults for
//! different test sets — the Monte Carlo estimate next to three
//! 1200-pattern LFSR test sets (the third seeded near-all-0s), for the
//! differential equation solver and the polynomial evaluator.
//!
//! The paper's point: while absolute power varies with the test set, the
//! *percentage change* from fault-free is consistent, so any short test
//! set can serve as the basis for power-based detection.
//!
//! All measurements are lane-packed: the Monte Carlo column comes from
//! the 63-fault-per-pass grading sweep (lane 0 doubling as the
//! fault-free baseline), and each test-set column measures the baseline
//! plus every shown fault in one 64-lane pass — bit-identical to the
//! scalar measurements the binary used to make, one at a time.
//!
//! Run with `cargo run --release -p sfr-bench --bin table3`.

#![allow(clippy::unwrap_used)]

use sfr_bench::{paper_config, threads_from_args, ObsArgs};
use sfr_core::exec::{Counters, EngineKind, Progress, Tee};
use sfr_core::{
    benchmarks, classify_system_with, grade_faults_with, measure_power_lanes_with_testset,
    EmittedSystem, PowerReport, StuckAt, System, TestSet,
};

fn show(
    name: &str,
    emitted: &EmittedSystem,
    threads: usize,
    progress: &dyn Progress,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = paper_config();
    let sys = System::build(emitted, cfg.system)?;
    let engine = EngineKind::for_threads(threads).build();
    let c = classify_system_with(&sys, &cfg.classify, engine.as_ref(), progress);
    let sfr: Vec<_> = c.sfr().map(|f| f.fault).collect();
    let trio = TestSet::paper_trio(sys.pattern_width())?;

    println!("({name})");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "", "Monte Carlo", "Test set 1", "Test set 2", "Test set 3"
    );
    // One lane-packed sweep grades every SFR fault and the baseline.
    let (base_mc, grades) = grade_faults_with(&sys, &sfr, &cfg.grade, threads, progress);

    // Representative faults spanning the power range (as the paper
    // does).
    let mut order: Vec<usize> = (0..grades.len()).collect();
    order.sort_by(|&a, &b| grades[a].mean_uw.total_cmp(&grades[b].mean_uw));
    let rows = 5.min(order.len());
    let picks: Vec<usize> = (0..rows)
        .map(|i| i * (order.len() - 1) / (rows - 1).max(1))
        .collect();
    let picked: Vec<StuckAt> = picks.iter().map(|&p| grades[order[p]].fault).collect();

    // One 64-lane pass per test set covers the fault-free baseline
    // (lane 0) and every shown fault.
    let per_set: Vec<Vec<PowerReport>> = trio
        .iter()
        .map(|ts| measure_power_lanes_with_testset(&sys, &picked, ts, &cfg.grade))
        .collect::<Result<_, _>>()?;
    let base_ts: Vec<f64> = per_set.iter().map(|r| r[0].total_uw).collect();
    println!(
        "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
        "fault-free", base_mc.mean_uw, base_ts[0], base_ts[1], base_ts[2]
    );

    let mut max_spread: f64 = 0.0;
    for (row, &p) in picks.iter().enumerate() {
        let g = &grades[order[p]];
        let cols: Vec<f64> = per_set.iter().map(|r| r[row + 1].total_uw).collect();
        let pct =
            |uw: f64, base: f64| -> String { format!("({:+.2}%)", 100.0 * (uw - base) / base) };
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            format!("fault {}", row + 1),
            g.mean_uw,
            cols[0],
            cols[1],
            cols[2]
        );
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12}",
            "",
            format!("({:+.2}%)", g.pct_change),
            pct(cols[0], base_ts[0]),
            pct(cols[1], base_ts[1]),
            pct(cols[2], base_ts[2])
        );
        let pcts: Vec<f64> = cols
            .iter()
            .zip(&base_ts)
            .map(|(f, b)| 100.0 * (f - b) / b)
            .collect();
        let spread = pcts
            .iter()
            .chain(std::iter::once(&g.pct_change))
            .fold((f64::MAX, f64::MIN), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        max_spread = max_spread.max(spread.1 - spread.0);
    }
    println!(
        "largest spread of %-change across test sets: {max_spread:.2} points — the\n\
         percentage increase is consistent from test set to test set, as the paper found."
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = threads_from_args();
    let counters = Counters::new();
    let obs = ObsArgs::from_env()?;
    let sinks = obs.sinks(&counters);
    let tee = Tee::new(&sinks);
    println!("Table 3: Power in the presence of SFR faults for different test sets");
    println!("(percentage change from fault-free shown beneath each row).");
    println!();
    show(
        "a: differential equation solver",
        &benchmarks::diffeq(4)?,
        threads,
        &tee,
    )?;
    show(
        "b: polynomial evaluator",
        &benchmarks::poly(4)?,
        threads,
        &tee,
    )?;
    drop(sinks);
    obs.finish()?;
    Ok(())
}
