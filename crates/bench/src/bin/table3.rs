//! Regenerates **Table 3**: power in the presence of SFR faults for
//! different test sets — the Monte Carlo estimate next to three
//! 1200-pattern LFSR test sets (the third seeded near-all-0s), for the
//! differential equation solver and the polynomial evaluator.
//!
//! The paper's point: while absolute power varies with the test set, the
//! *percentage change* from fault-free is consistent, so any short test
//! set can serve as the basis for power-based detection.
//!
//! Run with `cargo run --release -p sfr-bench --bin table3`.

use sfr_bench::{paper_config, threads_from_args};
use sfr_core::exec::{EngineKind, NullProgress};
use sfr_core::{
    benchmarks, classify_system_with, measure_power_monte_carlo_par, measure_power_with_testset,
    EmittedSystem, System, TestSet,
};

fn show(
    name: &str,
    emitted: &EmittedSystem,
    threads: usize,
) -> Result<(), Box<dyn std::error::Error>> {
    let cfg = paper_config();
    let sys = System::build(emitted, cfg.system)?;
    let engine = EngineKind::for_threads(threads).build();
    let c = classify_system_with(&sys, &cfg.classify, engine.as_ref(), &NullProgress);
    let sfr: Vec<_> = c.sfr().map(|f| f.fault).collect();
    let trio = TestSet::paper_trio(sys.pattern_width())?;

    println!("({name})");
    println!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}",
        "", "Monte Carlo", "Test set 1", "Test set 2", "Test set 3"
    );
    let base_mc = measure_power_monte_carlo_par(&sys, None, &cfg.grade, threads);
    let base_ts: Vec<f64> = trio
        .iter()
        .map(|ts| measure_power_with_testset(&sys, None, ts, &cfg.grade).total_uw)
        .collect();
    println!(
        "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
        "fault-free", base_mc.mean_uw, base_ts[0], base_ts[1], base_ts[2]
    );

    // Representative faults spanning the power range (as the paper
    // does); each fault's estimation is independent, so shard across
    // faults.
    let mut graded: Vec<(usize, f64)> = sfr_core::exec::par_map_indexed(threads, sfr.len(), |i| {
        let mc = sfr_core::measure_power_monte_carlo(&sys, Some(sfr[i]), &cfg.grade);
        (i, mc.mean_uw)
    });
    graded.sort_by(|a, b| a.1.total_cmp(&b.1));
    let rows = 5.min(graded.len());
    let picks: Vec<usize> = (0..rows)
        .map(|i| i * (graded.len() - 1) / (rows - 1).max(1))
        .collect();
    let mut max_spread: f64 = 0.0;
    for &p in &picks {
        let (idx, mc_uw) = graded[p];
        let fault = sfr[idx];
        let per_set: Vec<f64> = trio
            .iter()
            .map(|ts| measure_power_with_testset(&sys, Some(fault), ts, &cfg.grade).total_uw)
            .collect();
        let pct =
            |uw: f64, base: f64| -> String { format!("({:+.2}%)", 100.0 * (uw - base) / base) };
        println!(
            "{:<12} {:>12.2} {:>12.2} {:>12.2} {:>12.2}",
            format!("fault {}", p + 1),
            mc_uw,
            per_set[0],
            per_set[1],
            per_set[2]
        );
        let pcts: Vec<f64> = per_set
            .iter()
            .zip(&base_ts)
            .map(|(f, b)| 100.0 * (f - b) / b)
            .collect();
        let mc_pct = 100.0 * (mc_uw - base_mc.mean_uw) / base_mc.mean_uw;
        println!(
            "{:<12} {:>12} {:>12} {:>12} {:>12}",
            "",
            pct(mc_uw, base_mc.mean_uw),
            pct(per_set[0], base_ts[0]),
            pct(per_set[1], base_ts[1]),
            pct(per_set[2], base_ts[2])
        );
        let spread = pcts
            .iter()
            .chain(std::iter::once(&mc_pct))
            .fold((f64::MAX, f64::MIN), |(lo, hi), &p| (lo.min(p), hi.max(p)));
        max_spread = max_spread.max(spread.1 - spread.0);
    }
    println!(
        "largest spread of %-change across test sets: {max_spread:.2} points — the\n\
         percentage increase is consistent from test set to test set, as the paper found."
    );
    println!();
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = threads_from_args();
    println!("Table 3: Power in the presence of SFR faults for different test sets");
    println!("(percentage change from fault-free shown beneath each row).");
    println!();
    show(
        "a: differential equation solver",
        &benchmarks::diffeq(4)?,
        threads,
    )?;
    show("b: polynomial evaluator", &benchmarks::poly(4)?, threads)?;
    Ok(())
}
