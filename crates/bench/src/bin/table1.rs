//! Regenerates **Table 1**: the effect of system-functionally redundant
//! faults on power consumption for the 4-bit differential equation
//! solver — representative faults spanning the whole power range, with
//! their control line effects.
//!
//! Run with `cargo run --release -p sfr-bench --bin table1`.

#![allow(clippy::unwrap_used)]

use sfr_bench::{paper_config, report_counters, threads_from_args, ObsArgs};
use sfr_core::exec::{Counters, Tee};
use sfr_core::{render_table1, StudyBuilder};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let threads = threads_from_args();
    eprintln!(
        "classifying and grading diffeq on {threads} thread(s) \
         (Monte Carlo power, 63 faults + baseline per lane-packed pass)..."
    );
    let counters = Counters::new();
    let obs = ObsArgs::from_env()?;
    let sinks = obs.sinks(&counters);
    let tee = Tee::new(&sinks);
    let study = StudyBuilder::new("diffeq")
        .config(paper_config())
        .threads(threads)
        .build()?
        .run_with(&tee);
    drop(sinks);
    obs.finish()?;
    report_counters(&counters);
    println!("Table 1: SFR faults vs datapath power, 4-bit differential equation solver.");
    println!("(faults ranked by power; the paper's table spans -3.02% .. +20.98%)");
    println!();
    print!("{}", render_table1(&study, 6));
    println!();
    let min = study
        .grades
        .iter()
        .map(|g| g.pct_change)
        .fold(f64::MAX, f64::min);
    let max = study
        .grades
        .iter()
        .map(|g| g.pct_change)
        .fold(f64::MIN, f64::max);
    println!(
        "range over all {} SFR faults: {min:+.2}% .. {max:+.2}% (paper: -3.02% .. +20.98%)",
        study.grades.len()
    );
    Ok(())
}
