//! Regenerates **Table 2**: breakdown of controller faults for the three
//! examples (total faults, SFR faults, %SFR).
//!
//! Run with `cargo run --release -p sfr-bench --bin table2`.

#![allow(clippy::unwrap_used)]

use sfr_bench::{paper_config, report_counters, threads_from_args, ObsArgs};
use sfr_core::exec::{Counters, EngineKind, Tee};
use sfr_core::{benchmarks, classify_system_with, System};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = paper_config();
    let threads = threads_from_args();
    let engine = EngineKind::for_threads(threads).build();
    let counters = Counters::new();
    let obs = ObsArgs::from_env()?;
    let sinks = obs.sinks(&counters);
    let tee = Tee::new(&sinks);
    let start = std::time::Instant::now();
    println!("Table 2: Breakdown of controller faults for the three examples.");
    println!();
    println!(
        "{:<10} {:>12} {:>10} {:>11}    (paper: total / SFR / %SFR)",
        "", "Total Faults", "SFR Faults", "%Faults SFR"
    );
    let paper = [
        ("diffeq", 284, 37, 13.0),
        ("facet", 177, 36, 20.3),
        ("poly", 207, 28, 13.5),
    ];
    for ((name, emitted), (pname, ptot, psfr, ppct)) in
        benchmarks::all_benchmarks(4)?.into_iter().zip(paper)
    {
        assert_eq!(name, pname);
        let sys = System::build(&emitted, cfg.system)?;
        let c = classify_system_with(&sys, &cfg.classify, engine.as_ref(), &tee);
        println!(
            "{:<10} {:>12} {:>10} {:>10.1}%    ({ptot} / {psfr} / {ppct}%)",
            name,
            c.total(),
            c.sfr_count(),
            c.percent_sfr(),
        );
        assert_eq!(c.cfr_count(), 0, "paper: no CFR faults in the examples");
    }
    println!();
    println!("No controller-functionally redundant (CFR) faults, as in the paper:");
    println!("exact two-level minimization leaves no redundancy in the controllers.");
    drop(sinks);
    obs.finish()?;
    report_counters(&counters);
    eprintln!(
        "classified all three benchmarks in {:.2} s on {threads} thread(s)",
        start.elapsed().as_secs_f64()
    );
    Ok(())
}
