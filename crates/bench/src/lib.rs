//! Shared configuration for the table/figure regeneration binaries and
//! benches.
//!
//! Every experiment of the paper's evaluation section has a binary here
//! (`cargo run --release -p sfr-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — representative Diffeq SFR faults, effects and power |
//! | `table2` | Table 2 — fault breakdown for all three examples |
//! | `table3` | Table 3 — power consistency across test sets |
//! | `fig7` | Figure 7(a,b,c) — per-SFR-fault power scatter with ±5% band |
//! | `worstcase` | the Section 4 worst-case multi-effect experiment |
//!
//! The matching Criterion benches in `benches/` measure the *cost* of
//! each pipeline stage and the ablations called out in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sfr_core::{ClassifyConfig, GradeConfig, MonteCarloConfig, StudyConfig};

/// The full-fidelity configuration used to regenerate the paper's
/// numbers: 1200-pattern TPGR detection (the paper's test-set size) and
/// Monte Carlo power to 1% relative confidence.
pub fn paper_config() -> StudyConfig {
    StudyConfig {
        classify: ClassifyConfig {
            test_patterns: 1200,
            ..Default::default()
        },
        grade: GradeConfig {
            mc: MonteCarloConfig {
                rel_tolerance: 0.01,
                min_batches: 8,
                max_batches: 80,
            },
            patterns_per_batch: 240,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A reduced configuration for Criterion benches (same pipeline, fewer
/// patterns/batches so iterations stay fast).
pub fn quick_config() -> StudyConfig {
    StudyConfig {
        classify: ClassifyConfig {
            test_patterns: 240,
            ..Default::default()
        },
        grade: GradeConfig {
            mc: MonteCarloConfig {
                rel_tolerance: 0.05,
                min_batches: 3,
                max_batches: 8,
            },
            patterns_per_batch: 60,
            ..Default::default()
        },
        ..Default::default()
    }
}
