//! Shared configuration for the table/figure regeneration binaries and
//! benches.
//!
//! Every experiment of the paper's evaluation section has a binary here
//! (`cargo run --release -p sfr-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — representative Diffeq SFR faults, effects and power |
//! | `table2` | Table 2 — fault breakdown for all three examples |
//! | `table3` | Table 3 — power consistency across test sets |
//! | `fig7` | Figure 7(a,b,c) — per-SFR-fault power scatter with ±5% band |
//! | `worstcase` | the Section 4 worst-case multi-effect experiment |
//!
//! The matching Criterion benches in `benches/` measure the *cost* of
//! each pipeline stage and the ablations called out in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use sfr_core::exec::{CounterState, Counters};
use sfr_core::{ClassifyConfig, GradeConfig, MonteCarloConfig, StudyConfig};

/// The full-fidelity configuration used to regenerate the paper's
/// numbers: 1200-pattern TPGR detection (the paper's test-set size) and
/// Monte Carlo power to 1% relative confidence.
pub fn paper_config() -> StudyConfig {
    StudyConfig {
        classify: ClassifyConfig {
            test_patterns: 1200,
            ..Default::default()
        },
        grade: GradeConfig {
            mc: MonteCarloConfig {
                rel_tolerance: 0.01,
                min_batches: 8,
                max_batches: 80,
            },
            patterns_per_batch: 240,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A reduced configuration for Criterion benches (same pipeline, fewer
/// patterns/batches so iterations stay fast).
pub fn quick_config() -> StudyConfig {
    StudyConfig {
        classify: ClassifyConfig {
            test_patterns: 240,
            ..Default::default()
        },
        grade: GradeConfig {
            mc: MonteCarloConfig {
                rel_tolerance: 0.05,
                min_batches: 3,
                max_batches: 8,
            },
            patterns_per_batch: 60,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Reads the shared `--threads N` flag every table/figure binary
/// accepts (`cargo run -p sfr-bench --bin table2 -- --threads 8`).
/// Returns 1 when absent; 0 resolves to all available cores. Results
/// are byte-identical at every thread count — the flag only changes
/// wall-clock time.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    if threads == 0 {
        sfr_core::exec::default_threads()
    } else {
        threads
    }
}

/// Prints a campaign summary (the [`Counters`] snapshot) to stderr:
/// faults simulated/dropped, Monte Carlo convergence, per-phase wall
/// time.
pub fn report_counters(counters: &Counters) {
    let s: CounterState = counters.snapshot();
    if s.faults_simulated > 0 {
        eprintln!(
            "campaign: {} faults simulated, {} dropped by detection",
            s.faults_simulated, s.faults_dropped
        );
    }
    if s.mc_converged + s.mc_capped > 0 {
        eprintln!(
            "monte carlo: {} estimations converged, {} hit the batch ceiling ({} batches total)",
            s.mc_converged, s.mc_capped, s.mc_batches
        );
    }
    if s.grade_packs > 0 {
        eprintln!(
            "grading: {} faults in {} lane packs ({:.1} faults/pack)",
            s.grade_pack_faults,
            s.grade_packs,
            s.grade_pack_faults as f64 / s.grade_packs as f64
        );
    }
    if s.packs_restored > 0 {
        eprintln!(
            "checkpoint: {} pack(s) restored from the journal ({} faults skipped recomputation)",
            s.packs_restored, s.faults_restored
        );
    }
    if s.packs_quarantined > 0 {
        eprintln!(
            "quarantine: {} pack(s) panicked twice and were set aside ({} faults ungraded)",
            s.packs_quarantined, s.faults_quarantined
        );
    }
    if s.budget_exhausted > 0 {
        eprintln!(
            "watchdog: {} fault(s) exhausted their cycle budget",
            s.budget_exhausted
        );
    }
    for (phase, elapsed) in &s.phase_times {
        eprintln!(
            "phase {:<8} {:>8.1} ms",
            phase.label(),
            elapsed.as_secs_f64() * 1e3
        );
    }
}
