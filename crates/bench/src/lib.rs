//! Shared configuration for the table/figure regeneration binaries and
//! benches.
//!
//! Every experiment of the paper's evaluation section has a binary here
//! (`cargo run --release -p sfr-bench --bin <name>`):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table1` | Table 1 — representative Diffeq SFR faults, effects and power |
//! | `table2` | Table 2 — fault breakdown for all three examples |
//! | `table3` | Table 3 — power consistency across test sets |
//! | `fig7` | Figure 7(a,b,c) — per-SFR-fault power scatter with ±5% band |
//! | `worstcase` | the Section 4 worst-case multi-effect experiment |
//!
//! The matching Criterion benches in `benches/` measure the *cost* of
//! each pipeline stage and the ablations called out in `DESIGN.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

use sfr_core::exec::{Counters, Progress};
use sfr_core::obs::{Metrics, TraceWriter, TtyStatus};
use sfr_core::{ClassifyConfig, GradeConfig, MonteCarloConfig, StudyConfig};

/// The full-fidelity configuration used to regenerate the paper's
/// numbers: 1200-pattern TPGR detection (the paper's test-set size) and
/// Monte Carlo power to 1% relative confidence.
pub fn paper_config() -> StudyConfig {
    StudyConfig {
        classify: ClassifyConfig {
            test_patterns: 1200,
            ..Default::default()
        },
        grade: GradeConfig {
            mc: MonteCarloConfig {
                rel_tolerance: 0.01,
                min_batches: 8,
                max_batches: 80,
            },
            patterns_per_batch: 240,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// A reduced configuration for Criterion benches (same pipeline, fewer
/// patterns/batches so iterations stay fast).
pub fn quick_config() -> StudyConfig {
    StudyConfig {
        classify: ClassifyConfig {
            test_patterns: 240,
            ..Default::default()
        },
        grade: GradeConfig {
            mc: MonteCarloConfig {
                rel_tolerance: 0.05,
                min_batches: 3,
                max_batches: 8,
            },
            patterns_per_batch: 60,
            ..Default::default()
        },
        ..Default::default()
    }
}

/// Reads the shared `--threads N` flag every table/figure binary
/// accepts (`cargo run -p sfr-bench --bin table2 -- --threads 8`).
/// Returns 1 when absent; 0 resolves to all available cores. Results
/// are byte-identical at every thread count — the flag only changes
/// wall-clock time.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    let threads = args
        .iter()
        .position(|a| a == "--threads")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(1);
    if threads == 0 {
        sfr_core::exec::default_threads()
    } else {
        threads
    }
}

/// Prints a campaign summary (the [`Counters`] snapshot, via its
/// `Display` impl) to stderr: faults simulated/dropped, Monte Carlo
/// convergence, per-phase wall time.
pub fn report_counters(counters: &Counters) {
    eprint!("{}", counters.snapshot());
}

/// The observability sinks every table/figure binary accepts:
/// `--trace-out FILE` (structured JSONL trace), `--metrics-out FILE`
/// (Prometheus text snapshot plus stderr summary), `--quiet` (no live
/// status line). Mirrors the `sfr` CLI flags so a bench run can be
/// instrumented the same way as a campaign.
pub struct ObsArgs {
    trace: Option<TraceWriter>,
    metrics: Option<(Metrics, String)>,
    tty: TtyStatus,
}

impl ObsArgs {
    /// Parses the observability flags from the process arguments and
    /// opens the requested sinks (creating parent directories).
    ///
    /// # Errors
    ///
    /// Fails when the trace file cannot be created.
    pub fn from_env() -> std::io::Result<Self> {
        let args: Vec<String> = std::env::args().collect();
        let value = |name: &str| {
            args.iter()
                .position(|a| a == name)
                .and_then(|i| args.get(i + 1))
                .cloned()
        };
        let trace = match value("--trace-out") {
            Some(path) => Some(TraceWriter::create(path)?),
            None => None,
        };
        Ok(ObsArgs {
            trace,
            metrics: value("--metrics-out").map(|p| (Metrics::new(), p)),
            tty: TtyStatus::stderr(args.iter().any(|a| a == "--quiet")),
        })
    }

    /// The sink list (always including `counters`) to fan a run out to
    /// with [`sfr_core::exec::Tee`].
    pub fn sinks<'a>(&'a self, counters: &'a Counters) -> Vec<&'a dyn Progress> {
        let mut sinks: Vec<&dyn Progress> = vec![counters, &self.tty];
        if let Some(t) = &self.trace {
            sinks.push(t);
        }
        if let Some((m, _)) = &self.metrics {
            sinks.push(m);
        }
        sinks
    }

    /// Clears the status line, prints the metrics summary (when
    /// enabled), and finalizes the trace and metrics files.
    ///
    /// # Errors
    ///
    /// Fails when a sink file cannot be written.
    pub fn finish(self) -> std::io::Result<()> {
        self.tty.finish();
        if let Some((metrics, path)) = &self.metrics {
            eprint!("{}", metrics.render_summary());
            metrics.write_prometheus(path)?;
            eprintln!("metrics written to {path}");
        }
        if let Some(trace) = self.trace {
            let path = trace.path().display().to_string();
            trace.finish()?;
            eprintln!("trace written to {path}");
        }
        Ok(())
    }
}
