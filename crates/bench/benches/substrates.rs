//! Micro-benches of the substrate layers: logic minimization, gate-level
//! simulation, and power accounting.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_core::{
    benchmarks, power_from_activity, CycleSim, Logic, PowerConfig, System, SystemConfig,
};

fn bench(c: &mut Criterion) {
    let emitted = benchmarks::diffeq(4).expect("diffeq builds");
    let sys = System::build(&emitted, SystemConfig::default()).expect("system builds");

    let mut g = c.benchmark_group("substrates");
    g.sample_size(20);

    g.bench_function("qm_minimize_4var", |b| {
        b.iter(|| {
            let mut cubes = 0usize;
            for truth in [0x1ee1u32, 0xcafe, 0x8421, 0x7777] {
                let on: Vec<u32> = (0..16).filter(|&m| truth >> m & 1 == 1).collect();
                cubes += sfr_core::minimize(4, &on, &[]).cube_count();
            }
            cubes
        })
    });

    g.bench_function("diffeq_system_1000_cycles", |b| {
        b.iter(|| {
            let mut sim = CycleSim::new(&sys.netlist);
            sys.reset_sim(&mut sim, Logic::Zero);
            let inputs = vec![Logic::One; sys.netlist.inputs().len()];
            for _ in 0..1000 {
                sim.step(&inputs);
            }
            sim.outputs()
        })
    });

    g.bench_function("diffeq_system_1000_quiet_cycles_eventdriven", |b| {
        use sfr_core::benchmarks;
        let _ = &benchmarks::diffeq; // engine comparison on the same netlist
        b.iter(|| {
            let mut sim = sfr_netlist_event(&sys);
            let inputs = vec![Logic::One; sys.netlist.inputs().len()];
            for _ in 0..1000 {
                sim.set_inputs(&inputs);
                sim.eval();
                sim.clock();
            }
            sim.outputs()
        })
    });

    g.bench_function("power_accounting", |b| {
        let mut sim = CycleSim::new(&sys.netlist);
        sim.track_activity(true);
        sys.reset_sim(&mut sim, Logic::Zero);
        let inputs = vec![Logic::One; sys.netlist.inputs().len()];
        for _ in 0..200 {
            sim.step(&inputs);
        }
        let act = sim.activity().clone();
        b.iter(|| power_from_activity(&sys.netlist, &act, &PowerConfig::default()))
    });

    g.finish();
}

fn sfr_netlist_event<'a>(sys: &'a sfr_core::System) -> sfr_core::EventSim<'a> {
    let mut sim = sfr_core::EventSim::new(&sys.netlist);
    let code = sys.fsm.reset_code();
    for (k, &g) in sys.ctrl.state_gates.iter().enumerate() {
        sim.set_state(g, Logic::from_bool(code >> k & 1 == 1));
    }
    for gates in &sys.elab.reg_gates {
        for &g in gates {
            sim.set_state(g, Logic::Zero);
        }
    }
    sim
}

criterion_group!(benches, bench);
criterion_main!(benches);
