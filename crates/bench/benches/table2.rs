//! Criterion bench for the Table 2 computation: full classification of
//! each benchmark's controller fault universe.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::{benchmarks, classify_system, System};

fn bench(c: &mut Criterion) {
    let cfg = quick_config();
    let mut g = c.benchmark_group("table2_classification");
    g.sample_size(10);
    for (name, emitted) in benchmarks::all_benchmarks(4).expect("benchmarks build") {
        let sys = System::build(&emitted, cfg.system).expect("system builds");
        g.bench_function(name, |b| {
            b.iter(|| {
                let cls = classify_system(&sys, &cfg.classify);
                assert!(cls.sfr_count() > 0);
                cls
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
