//! Ablation: datapath width (4/8/12 bits) vs classification cost. The
//! paper fixes 4 bits; the printed SFR counts let the width-stability of
//! the fault population be checked.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::{benchmarks, classify_system, System};

fn bench(c: &mut Criterion) {
    let cfg = quick_config();
    let mut g = c.benchmark_group("ablation_width");
    g.sample_size(10);
    // Pattern words are u64: 5 ports × width must stay ≤ 64 bits.
    for width in [4usize, 8, 12] {
        let emitted = benchmarks::poly(width).expect("poly builds");
        let sys = System::build(&emitted, cfg.system).expect("system builds");
        let cls = classify_system(&sys, &cfg.classify);
        println!(
            "width={width}: system_gates={} total={} sfr={} ({:.1}%)",
            sys.netlist.gate_count(),
            cls.total(),
            cls.sfr_count(),
            cls.percent_sfr()
        );
        g.bench_function(format!("classify_poly_w{width}"), |b| {
            b.iter(|| classify_system(&sys, &cfg.classify))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
