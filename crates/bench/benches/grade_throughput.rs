//! Grading throughput: scalar vs 63-lane vs threaded lane-packed vs
//! compiled-tape Monte Carlo power grading, on the differential
//! equation solver.
//!
//! Emits `BENCH_grade.json` at the workspace root (faults/sec, simulated
//! lane-cycles/sec, speedups over the scalar reference) so the perf
//! trajectory has data points, and cross-checks that every engine's
//! grades are bit-identical before reporting anything. The tape rows
//! are `tape_1t` (compiled 64-bit tape, one thread), `tape_wide_1t`
//! (256-bit tape, 255 faults + baseline per pass, one thread) and
//! `tape_mt` (the wide tape sharded across worker threads). A final
//! probe runs a coordinator + one-worker shard campaign untraced and
//! with both sides writing flight-recorder traces, and reports the
//! wall-clock delta as `shard_trace_overhead_pct` (contract: < 5%).
//!
//! Run with `cargo bench -p sfr-bench --bench grade_throughput`
//! (add `-- --quick` for the CI smoke mode: fewer faults and batches,
//! no criterion sampling — finishes in seconds).

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::exec::{Counters, EngineKind, NullProgress, SimKernel};
use sfr_core::{
    analyze_controller_static, benchmarks, classify_system_with, grade_faults_scalar_with,
    grade_faults_with, grade_faults_with_kernel, measure_power_lanes_with_testset,
    measure_power_tape_watched, measure_power_with_testset, render_table1, static_rule_label,
    FaultClasses, GradeConfig, MonteCarloConfig, PowerGrade, StuckAt, System, SystemConfig,
    TapeProgram, TestSet, W256,
};
use std::time::{Duration, Instant};

fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// One engine's timed full-grading run.
struct EngineRun {
    name: &'static str,
    seconds: f64,
    mc_batches: usize,
    grades: Vec<PowerGrade>,
}

/// Times one full grading sweep. Each row closure times its own sweep
/// so special rows (the traced probe) can keep setup and teardown
/// outside the clock.
fn sweep(name: &'static str, run: impl Fn(&Counters) -> Vec<PowerGrade>) -> EngineRun {
    let counters = Counters::new();
    let start = Instant::now();
    let grades = run(&counters);
    let seconds = start.elapsed().as_secs_f64();
    EngineRun {
        name,
        seconds,
        mc_batches: counters.snapshot().mc_batches,
        grades,
    }
}

/// Best-of-N over interleaved passes: every row is run once, then the
/// whole cycle repeats, and each row keeps its fastest observation.
/// Single short measurements are dominated by scheduler jitter and
/// frequency scaling; interleaving makes a slow window hit all engines
/// alike instead of biasing whichever row it lands on, and every run
/// computes bit-identical grades, so the fastest observation per row
/// is the honest throughput estimate.
fn best_of_interleaved(passes: usize, rows: &[Box<dyn Fn() -> EngineRun + '_>]) -> Vec<EngineRun> {
    let mut best: Vec<Option<EngineRun>> = rows.iter().map(|_| None).collect();
    for _ in 0..passes {
        for (slot, row) in rows.iter().enumerate() {
            let run = row();
            if best[slot]
                .as_ref()
                .map_or(true, |b| run.seconds < b.seconds)
            {
                best[slot] = Some(run);
            }
        }
    }
    best.into_iter()
        .map(|r| r.expect("every row ran at least once"))
        .collect()
}

/// Times one in-process coordinator + one-worker shard campaign over
/// the real TCP protocol, with the given progress sinks on each side.
/// Setup (study preparation) and teardown (journal removal) stay
/// outside the clock; the timed region is bind → serve → merge.
fn shard_campaign(
    spec: &sfr_shard::ShardSpec,
    journal: &std::path::Path,
    coordinator: &dyn sfr_core::exec::Progress,
    worker: &dyn sfr_core::exec::Progress,
) -> (f64, sfr_core::Study) {
    let _ = std::fs::remove_file(journal);
    let prepared = spec
        .study_builder()
        .checkpoint(journal)
        .build()
        .expect("shard spec builds");
    let (tx, rx) = std::sync::mpsc::channel();
    let cfg = sfr_shard::ServeConfig {
        grace: Duration::from_millis(8_000),
        bound: Some(tx),
        ..Default::default()
    };
    let start = Instant::now();
    let result = std::thread::scope(|scope| {
        let serve = scope.spawn(|| sfr_shard::serve(prepared, spec, &cfg, coordinator));
        let addr = rx
            .recv_timeout(Duration::from_secs(30))
            .expect("coordinator never bound");
        let wcfg = sfr_shard::WorkConfig {
            connect: addr.to_string(),
            worker_id: 1,
            ..Default::default()
        };
        sfr_shard::work(&wcfg, worker).expect("worker failed");
        serve.join().expect("serve thread panicked")
    });
    let seconds = start.elapsed().as_secs_f64();
    let (study, _stats) = result.expect("serve failed");
    let _ = std::fs::remove_file(journal);
    (seconds, study)
}

fn bench(c: &mut Criterion) {
    let quick = quick_mode();
    let cfg = quick_config();
    let gcfg = if quick {
        GradeConfig {
            mc: MonteCarloConfig {
                rel_tolerance: 0.05,
                min_batches: 2,
                max_batches: 3,
            },
            patterns_per_batch: 40,
            ..cfg.grade.clone()
        }
    } else {
        // Full mode grades at study scale (the `GradeConfig` defaults:
        // 120-pattern batches to 1% Monte Carlo confidence). The quick
        // batches are short enough that per-batch fixed costs dominate
        // every row and the numbers measure overhead, not simulation.
        GradeConfig::default()
    };
    let threads = sfr_core::exec::default_threads().max(2);

    let emitted = benchmarks::diffeq(4).expect("diffeq builds");
    let sys = System::build(&emitted, cfg.system).expect("system builds");
    let engine = EngineKind::for_threads(threads).build();
    let cls = classify_system_with(&sys, &cfg.classify, engine.as_ref(), &NullProgress);
    let mut faults: Vec<StuckAt> = cls.sfr().map(|f| f.fault).collect();
    if quick {
        faults.truncate(12);
    }
    eprintln!(
        "grading {} diffeq SFR faults ({} mode, {} threads for the threaded engine)",
        faults.len(),
        if quick { "quick" } else { "full" },
        threads
    );

    // The batch-0 test set, for the per-batch criterion probes and the
    // lane-cycle throughput estimate.
    let ts = TestSet::pseudorandom(sys.pattern_width(), gcfg.patterns_per_batch, gcfg.seed)
        .expect("16-stage TPGR always constructs");
    let cycles_per_batch = measure_power_with_testset(&sys, None, &ts, &gcfg).cycles;

    // Full-sweep timings (these feed BENCH_grade.json). The last row is
    // the tracing-overhead probe: the same 1-thread lane sweep with the
    // JSONL trace sink attached. The observability contract is that an
    // enabled trace costs under 2% — events are aggregated per worker
    // and flushed at pack boundaries, never inside the lane loop. Only
    // the sweep itself is timed (the writer is opened and finalized
    // outside the clock — one-time setup, not per-fault cost).
    let trace_path = std::env::temp_dir().join("sfr_grade_throughput_trace.jsonl");
    let rows: Vec<Box<dyn Fn() -> EngineRun + '_>> = vec![
        Box::new(|| {
            sweep("scalar_1t", |p| {
                grade_faults_scalar_with(&sys, &faults, &gcfg, 1, p).1
            })
        }),
        Box::new(|| {
            sweep("lanes_1t", |p| {
                grade_faults_with(&sys, &faults, &gcfg, 1, p).1
            })
        }),
        Box::new(|| {
            sweep("lanes_mt", |p| {
                grade_faults_with(&sys, &faults, &gcfg, threads, p).1
            })
        }),
        Box::new(|| {
            sweep("tape_1t", |p| {
                grade_faults_with_kernel(&sys, &faults, &gcfg, 1, p, SimKernel::Tape).1
            })
        }),
        Box::new(|| {
            sweep("tape_wide_1t", |p| {
                grade_faults_with_kernel(&sys, &faults, &gcfg, 1, p, SimKernel::TapeWide).1
            })
        }),
        // The fully accelerated configuration: the 256-lane tape with
        // packs sharded across worker threads.
        Box::new(|| {
            sweep("tape_mt", |p| {
                grade_faults_with_kernel(&sys, &faults, &gcfg, threads, p, SimKernel::TapeWide).1
            })
        }),
        Box::new(|| {
            let counters = Counters::new();
            let trace = sfr_core::obs::TraceWriter::create(&trace_path).expect("trace file opens");
            let sinks: [&dyn sfr_core::exec::Progress; 2] = [&counters, &trace];
            let tee = sfr_core::exec::Tee::new(&sinks);
            let start = Instant::now();
            let grades = grade_faults_with(&sys, &faults, &gcfg, 1, &tee).1;
            let seconds = start.elapsed().as_secs_f64();
            trace.finish().expect("trace flushes");
            EngineRun {
                name: "lanes_1t_traced",
                seconds,
                mc_batches: counters.snapshot().mc_batches,
                grades,
            }
        }),
    ];
    let mut runs = best_of_interleaved(4, &rows).into_iter();
    let (scalar, lanes, threaded, tape, tape_wide, tape_mt, traced) = (
        runs.next().expect("scalar row"),
        runs.next().expect("lanes row"),
        runs.next().expect("threaded row"),
        runs.next().expect("tape row"),
        runs.next().expect("wide tape row"),
        runs.next().expect("threaded tape row"),
        runs.next().expect("traced row"),
    );
    let (untraced_best, traced_best) = (lanes.seconds, traced.seconds);
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace reads back");
    sfr_core::obs::check_trace(&trace_text).expect("trace validates");

    // Shard flight-recorder overhead: the same coordinator + one-worker
    // campaign over the real TCP protocol, untraced vs with both sides
    // writing JSONL traces. The distributed-observability contract is
    // under 5% wall-clock overhead, and every traced pass must
    // reconstruct into a gap-free report with results identical to the
    // untraced run.
    let shard_design = if quick { "facet" } else { "diffeq" };
    let mut shard_spec = sfr_shard::ShardSpec::new(shard_design, 4).quick_monte_carlo();
    shard_spec.patterns = 240;
    let shard_journal = std::env::temp_dir().join("sfr_grade_throughput_shard.journal");
    let shard_trace_dir = std::env::temp_dir().join("sfr_grade_throughput_shard_traces");
    let _ = std::fs::remove_dir_all(&shard_trace_dir);
    std::fs::create_dir_all(&shard_trace_dir).expect("shard trace dir");
    let shard_passes = if quick { 2 } else { 3 };
    let (mut shard_untraced_best, mut shard_traced_best) = (f64::INFINITY, f64::INFINITY);
    for pass in 0..shard_passes {
        let (plain_s, plain_study) =
            shard_campaign(&shard_spec, &shard_journal, &NullProgress, &NullProgress);
        shard_untraced_best = shard_untraced_best.min(plain_s);

        let coord_path = shard_trace_dir.join(format!("trace-{pass}.jsonl"));
        let worker_path = shard_trace_dir.join(format!("worker-1-{pass}.jsonl"));
        let coord = sfr_core::obs::TraceWriter::create(&coord_path).expect("coordinator trace");
        let work = sfr_core::obs::TraceWriter::create(&worker_path).expect("worker trace");
        let (traced_s, traced_study) = shard_campaign(&shard_spec, &shard_journal, &coord, &work);
        shard_traced_best = shard_traced_best.min(traced_s);
        coord.finish().expect("coordinator trace flushes");
        work.finish().expect("worker trace flushes");

        assert_eq!(
            render_table1(&plain_study, 5),
            render_table1(&traced_study, 5),
            "worker tracing perturbed the distributed grades"
        );
        let artifacts: Vec<sfr_core::obs::Artifact> = [&coord_path, &worker_path]
            .iter()
            .map(|p| sfr_core::obs::Artifact {
                label: p.display().to_string(),
                text: std::fs::read_to_string(p).expect("trace reads back"),
            })
            .collect();
        let report = sfr_core::obs::build_report(&artifacts, None).expect("report builds");
        assert!(
            report.gaps.is_empty(),
            "traced campaign left gaps: {:?}",
            report.gaps
        );
        assert!(report.packs.merged >= 1, "no pack merged from the worker");
    }
    let shard_trace_overhead_pct = (shard_traced_best / shard_untraced_best - 1.0) * 100.0;
    let _ = std::fs::remove_dir_all(&shard_trace_dir);

    // Bit-identity gate: a throughput number for wrong answers is
    // meaningless.
    for run in [&lanes, &threaded, &tape, &tape_wide, &tape_mt, &traced] {
        assert_eq!(run.grades.len(), scalar.grades.len());
        for (s, l) in scalar.grades.iter().zip(&run.grades) {
            assert_eq!(
                s.mean_uw, l.mean_uw,
                "{}: grades must be bit-identical",
                run.name
            );
            assert_eq!(s.pct_change, l.pct_change, "{}", run.name);
            assert_eq!(s.flagged, l.flagged, "{}", run.name);
        }
    }

    let metric = |run: &EngineRun| -> (f64, f64) {
        let fps = faults.len() as f64 / run.seconds;
        // Useful (per-lane) simulated cycles per second: every Monte
        // Carlo batch of every estimation delivers about one batch-0
        // test set worth of cycles to one lane.
        let cps = run.mc_batches as f64 * cycles_per_batch as f64 / run.seconds;
        (fps, cps)
    };
    let (scalar_fps, scalar_cps) = metric(&scalar);
    let mut engines_json = String::new();
    for run in [
        &scalar, &lanes, &threaded, &tape, &tape_wide, &tape_mt, &traced,
    ] {
        let (fps, cps) = metric(run);
        engines_json.push_str(&format!(
            "    {{\"name\": \"{}\", \"seconds\": {:.4}, \"faults_per_sec\": {:.2}, \
             \"mc_batches\": {}, \"lane_cycles_per_sec\": {:.0}}},\n",
            run.name, run.seconds, fps, run.mc_batches, cps
        ));
        eprintln!(
            "  {:<9} {:>8.3} s  {:>8.2} faults/s  {:>12.0} lane-cycles/s",
            run.name, run.seconds, fps, cps
        );
    }
    engines_json.truncate(engines_json.trim_end_matches(",\n").len());
    // The analyze stage (`sfr analyze`): per-benchmark collapse ratio
    // and the wall time of the full static pass — equivalence-class
    // partition plus the abstract-interpretation/table/oracle rules.
    // The claim worth tracking is that shrinking the universe costs
    // milliseconds against grading sweeps that cost seconds.
    let mut collapse_json = String::new();
    for (bench, emitted) in benchmarks::extended_benchmarks(4).expect("benchmarks build") {
        let csys = System::build(&emitted, SystemConfig::default()).expect("system builds");
        let universe = csys.controller_faults();
        let start = Instant::now();
        let classes = FaultClasses::build(&csys.netlist, &universe);
        let analysis = analyze_controller_static(&csys);
        let mut campaign = std::collections::BTreeSet::new();
        for (i, &f) in universe.iter().enumerate() {
            if static_rule_label(&csys, &analysis, f).is_none() {
                campaign.insert(classes.representative(i));
            }
        }
        let analyze_seconds = start.elapsed().as_secs_f64();
        collapse_json.push_str(&format!(
            "    {{\"bench\": \"{}\", \"universe\": {}, \"classes\": {}, \
             \"collapse_ratio\": {:.4}, \"campaign\": {}, \"analyze_seconds\": {:.4}}},\n",
            bench,
            classes.len(),
            classes.class_count(),
            classes.collapse_ratio(),
            campaign.len(),
            analyze_seconds
        ));
        eprintln!(
            "  analyze {:<7} {:>3}/{:<3} classes (ratio {:.3}), campaign {:>3}, {:>7.4} s",
            bench,
            classes.class_count(),
            classes.len(),
            classes.collapse_ratio(),
            campaign.len(),
            analyze_seconds
        );
    }
    collapse_json.truncate(collapse_json.trim_end_matches(",\n").len());

    let (lanes_fps, lanes_cps) = metric(&lanes);
    let (threaded_fps, _) = metric(&threaded);
    let (tape_fps, tape_cps) = metric(&tape);
    let (tape_wide_fps, tape_wide_cps) = metric(&tape_wide);
    let (tape_mt_fps, tape_mt_cps) = metric(&tape_mt);
    let trace_overhead_pct = (traced_best / untraced_best - 1.0) * 100.0;
    let json = format!(
        "{{\n  \"design\": \"diffeq\",\n  \"mode\": \"{}\",\n  \"sfr_faults\": {},\n  \
         \"threads\": {},\n  \"cycles_per_batch\": {},\n  \"engines\": [\n{}\n  ],\n  \
         \"speedup_lanes_1t\": {:.2},\n  \"speedup_lanes_mt\": {:.2},\n  \
         \"speedup_tape_1t\": {:.2},\n  \"speedup_tape_wide_1t\": {:.2},\n  \
         \"speedup_tape_mt\": {:.2},\n  \"tape_vs_lanes_1t_cycles\": {:.2},\n  \
         \"tape_wide_vs_lanes_1t_cycles\": {:.2},\n  \"tape_mt_vs_lanes_1t_cycles\": {:.2},\n  \
         \"trace_overhead_pct\": {:.2},\n  \"shard_trace_overhead_pct\": {:.2},\n  \
         \"baseline_cycles_per_sec\": {:.0},\n  \"collapse\": [\n{}\n  ]\n}}\n",
        if quick { "quick" } else { "full" },
        faults.len(),
        threads,
        cycles_per_batch,
        engines_json,
        lanes_fps / scalar_fps,
        threaded_fps / scalar_fps,
        tape_fps / scalar_fps,
        tape_wide_fps / scalar_fps,
        tape_mt_fps / scalar_fps,
        tape_cps / lanes_cps,
        tape_wide_cps / lanes_cps,
        tape_mt_cps / lanes_cps,
        trace_overhead_pct,
        shard_trace_overhead_pct,
        scalar_cps,
        collapse_json
    );
    // The quick CI smoke exercises the whole bench but must not clobber
    // the committed full-mode numbers.
    let out = if quick {
        std::env::temp_dir()
            .join("BENCH_grade_quick.json")
            .display()
            .to_string()
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_grade.json").to_string()
    };
    std::fs::write(&out, &json).expect("write BENCH_grade.json");
    eprintln!(
        "speedup over scalar: {:.2}x (1 thread), {:.2}x ({} threads) -> {}",
        lanes_fps / scalar_fps,
        threaded_fps / scalar_fps,
        threads,
        out
    );
    eprintln!(
        "tape lane-cycles vs lanes_1t: {:.2}x (tape_1t), {:.2}x (tape_wide_1t), {:.2}x (tape_mt)",
        tape_cps / lanes_cps,
        tape_wide_cps / lanes_cps,
        tape_mt_cps / lanes_cps
    );
    eprintln!("tracing overhead: {trace_overhead_pct:+.2}% (target < 2%)");
    eprintln!("shard tracing overhead: {shard_trace_overhead_pct:+.2}% (target < 5%)");

    // Criterion probes of one Monte Carlo batch per engine (skipped in
    // the CI smoke so the whole bench stays inside its time budget).
    if !quick {
        let mut g = c.benchmark_group("grade_throughput");
        g.sample_size(10);
        g.bench_function("mc_batch_scalar", |b| {
            b.iter(|| measure_power_with_testset(&sys, Some(faults[0]), &ts, &gcfg))
        });
        g.bench_function("mc_batch_63_lanes", |b| {
            b.iter(|| {
                measure_power_lanes_with_testset(&sys, &faults, &ts, &gcfg).expect("pack fits")
            })
        });
        let prog = TapeProgram::<u64>::compile(&sys.netlist, &faults).expect("pack fits");
        g.bench_function("mc_batch_tape_63_lanes", |b| {
            b.iter(|| measure_power_tape_watched(&sys, &prog, &ts, &gcfg))
        });
        let wprog = TapeProgram::<W256>::compile(&sys.netlist, &faults).expect("pack fits");
        g.bench_function("mc_batch_tape_wide", |b| {
            b.iter(|| measure_power_tape_watched(&sys, &wprog, &ts, &gcfg))
        });
        g.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
