//! Ablation: serial vs 63-lane bit-parallel fault simulation — the
//! substrate speed-up claim of `DESIGN.md`.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_core::{
    benchmarks, golden_trace, run_parallel, run_serial, RunConfig, System, SystemConfig, TestSet,
};

fn bench(c: &mut Criterion) {
    let emitted = benchmarks::diffeq(4).expect("diffeq builds");
    let sys = System::build(&emitted, SystemConfig::default()).expect("system builds");
    let ts = TestSet::pseudorandom(sys.pattern_width(), 240, 0xACE1).expect("test set");
    let golden = golden_trace(&sys, &ts, &RunConfig::default());
    let faults = sys.controller_faults();

    let mut g = c.benchmark_group("ablation_faultsim");
    g.sample_size(10);
    g.bench_function("serial", |b| b.iter(|| run_serial(&sys, &golden, &faults)));
    g.bench_function("parallel_63_lanes", |b| {
        b.iter(|| run_parallel(&sys, &golden, &faults))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
