//! Criterion bench for the Table 1 computation: Monte Carlo power
//! grading of one diffeq SFR fault against the fault-free baseline.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::{benchmarks, classify_system, measure_power_monte_carlo, System};

fn bench(c: &mut Criterion) {
    let cfg = quick_config();
    let emitted = benchmarks::diffeq(4).expect("diffeq builds");
    let sys = System::build(&emitted, cfg.system).expect("system builds");
    let cls = classify_system(&sys, &cfg.classify);
    let fault = cls.sfr().next().expect("diffeq has SFR faults").fault;

    let mut g = c.benchmark_group("table1_power_grading");
    g.sample_size(10);
    g.bench_function("fault_free_monte_carlo", |b| {
        b.iter(|| measure_power_monte_carlo(&sys, None, &cfg.grade))
    });
    g.bench_function("single_sfr_fault_monte_carlo", |b| {
        b.iter(|| measure_power_monte_carlo(&sys, Some(fault), &cfg.grade))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
