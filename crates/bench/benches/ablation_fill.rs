//! Ablation: don't-care fill policy (arbitrary / synthesis / zeros /
//! ones) vs the SFR population. The paper deliberately did not
//! power-optimize its fills; this bench quantifies what each policy does
//! to classification cost and, via the printed counts, to the SFR
//! fraction. Key reproduction finding: exact don't-care absorption
//! (`synthesis`) eliminates select-line SFR faults entirely — prime
//! covers leave no slack a fault can flip harmlessly.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::{benchmarks, classify_system, FillPolicy, System, SystemConfig};

fn bench(c: &mut Criterion) {
    let cfg = quick_config();
    let emitted = benchmarks::poly(4).expect("poly builds");
    let mut g = c.benchmark_group("ablation_fill");
    g.sample_size(10);
    for fill in [
        FillPolicy::Arbitrary(0x5EED),
        FillPolicy::Synthesis,
        FillPolicy::Zeros,
        FillPolicy::Ones,
    ] {
        let sys = System::build(
            &emitted,
            SystemConfig {
                fill,
                ..SystemConfig::default()
            },
        )
        .expect("system builds");
        let cls = classify_system(&sys, &cfg.classify);
        println!(
            "fill={fill}: total={} sfr={} ({:.1}%)",
            cls.total(),
            cls.sfr_count(),
            cls.percent_sfr()
        );
        g.bench_function(format!("classify_{fill}"), |b| {
            b.iter(|| classify_system(&sys, &cfg.classify))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
