//! Criterion bench for the worst-case experiment on the toy-sized facet
//! system.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::{benchmarks, worst_case_extra_effects, System};

fn bench(c: &mut Criterion) {
    let cfg = quick_config();
    let emitted = benchmarks::facet(4).expect("facet builds");
    let sys = System::build(&emitted, cfg.system).expect("system builds");
    let mut g = c.benchmark_group("worstcase");
    g.sample_size(10);
    g.bench_function("facet_greedy_max_effects", |b| {
        b.iter(|| worst_case_extra_effects(&sys, &cfg.grade))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
