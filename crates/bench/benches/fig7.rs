//! Criterion bench for the Figure 7 pipeline: classify + grade one full
//! benchmark (facet, the smallest) end to end.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::{benchmarks, Fig7Series, StudyBuilder};

fn bench(c: &mut Criterion) {
    let cfg = quick_config();
    let emitted = benchmarks::facet(4).expect("facet builds");
    let mut g = c.benchmark_group("fig7_end_to_end");
    g.sample_size(10);
    g.bench_function("facet_study_and_series", |b| {
        b.iter(|| {
            let study = StudyBuilder::from_emitted("facet", emitted.clone())
                .config(cfg.clone())
                .build()
                .expect("study builds")
                .run();
            Fig7Series::from_study(&study, cfg.grade.threshold_pct)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
