//! Criterion bench for the Table 3 measurement: datapath power of the
//! polynomial evaluator over one 1200-pattern test set.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::{benchmarks, measure_power_with_testset, System, TestSet};

fn bench(c: &mut Criterion) {
    let cfg = quick_config();
    let emitted = benchmarks::poly(4).expect("poly builds");
    let sys = System::build(&emitted, cfg.system).expect("system builds");
    let trio = TestSet::paper_trio(sys.pattern_width()).expect("test sets");

    let mut g = c.benchmark_group("table3_testset_power");
    g.sample_size(10);
    for (i, ts) in trio.iter().enumerate() {
        g.bench_function(format!("poly_testset_{}", i + 1), |b| {
            b.iter(|| measure_power_with_testset(&sys, None, ts, &cfg.grade))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
