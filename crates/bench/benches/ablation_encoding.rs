//! Ablation: controller state encoding (binary / gray / one-hot) vs the
//! fault universe size and classification cost.

#![allow(clippy::unwrap_used)]

use criterion::{criterion_group, criterion_main, Criterion};
use sfr_bench::quick_config;
use sfr_core::{benchmarks, classify_system, Encoding, System, SystemConfig};

fn bench(c: &mut Criterion) {
    let cfg = quick_config();
    let emitted = benchmarks::facet(4).expect("facet builds");
    let mut g = c.benchmark_group("ablation_encoding");
    g.sample_size(10);
    for encoding in [Encoding::Binary, Encoding::Gray, Encoding::OneHot] {
        let sys = System::build(
            &emitted,
            SystemConfig {
                encoding,
                ..SystemConfig::default()
            },
        )
        .expect("system builds");
        let cls = classify_system(&sys, &cfg.classify);
        println!(
            "encoding={encoding}: ctl_gates={} total={} sfr={} ({:.1}%)",
            sys.ctrl.gate_count(),
            cls.total(),
            cls.sfr_count(),
            cls.percent_sfr()
        );
        g.bench_function(format!("classify_{encoding}"), |b| {
            b.iter(|| classify_system(&sys, &cfg.classify))
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
