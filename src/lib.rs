//! `sfr-power` — detecting undetectable controller faults using power
//! analysis.
//!
//! This is the workspace facade crate: it re-exports everything from
//! [`sfr_core`], which implements the full methodology of *“Detecting
//! Undetectable Controller Faults Using Power Analysis”* (Carletta,
//! Papachristou, Nourani — DATE 2000). See the crate documentation of
//! [`sfr_core`] and the repository's `README.md` / `DESIGN.md` /
//! `EXPERIMENTS.md` for the full story, and `examples/` for runnable
//! entry points.
//!
//! ```
//! use sfr_power::{benchmarks, classify_system, ClassifyConfig, System, SystemConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let emitted = benchmarks::facet(4)?;
//! let sys = System::build(&emitted, SystemConfig::default())?;
//! let cfg = ClassifyConfig { test_patterns: 200, ..Default::default() };
//! let classes = classify_system(&sys, &cfg);
//! assert!(classes.sfr_count() > 0, "some faults are undetectable by I/O test");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub use sfr_core::*;

/// The fault-tolerant sharded campaign runner (`sfr shard serve` /
/// `sfr shard work`): coordinator/worker protocol, lease fencing,
/// retry/backoff, and the chaos harness.
pub use sfr_shard as shard;
