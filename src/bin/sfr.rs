//! `sfr` — command-line front end for the sfr-power workspace.
//!
//! ```text
//! sfr classify    <benchmark> [--width N] [--patterns N] [--threads N] [--engine NAME]
//!                             [--static-prune] [--collapse]
//! sfr grade       <benchmark> [--width N] [--threshold PCT] [--threads N] [--engine NAME]
//!                             [--static-prune] [--collapse] [--checkpoint FILE]
//!                             [--resume FILE] [--cycle-budget N]
//! sfr analyze     <benchmark> [--width N] [--threads N] [--format text|json]
//! sfr lint        <benchmark>|--fixture [--width N] [--format text|json]
//! sfr stats       <benchmark> [--width N]
//! sfr vcd         <benchmark> [--width N] [--fault SPEC] [--out FILE]
//! sfr verilog     <benchmark> [--width N] [--out FILE]
//! sfr testprogram <benchmark> [--width N] [--patterns N] [--out FILE] [--threads N]
//!                             [--engine NAME]
//! sfr table2      [--patterns N] [--threads N] [--engine NAME]
//! sfr shard serve <benchmark> [grade flags] [--addr HOST:PORT] [--lease-ms N]
//!                             [--grace-ms N] [--spawn-workers N]
//!                             [--chaos kill=P,stall=P] [--chaos-seed N]
//!                             [--worker-trace-dir DIR]
//! sfr shard work  --connect HOST:PORT [--max-retries N] [--stall P] [--chaos-seed N]
//!                             [--worker-id N]
//! sfr report      <artifacts...> [--journal FILE] [--format text|json]
//! ```
//!
//! `<benchmark>` is one of `diffeq`, `facet`, `poly`, `fir`.
//!
//! `--threads N` shards fault simulation and Monte Carlo power grading
//! across N worker threads (0 = all cores); results are byte-identical
//! at every thread count. A campaign summary — faults simulated and
//! dropped, Monte Carlo convergence, wall time per phase — is printed
//! to stderr.
//!
//! `--engine NAME` picks the simulation kernel: `serial`, `lane`,
//! `threaded` (the interpretive simulators), `tape` (the compiled
//! levelized op-tape kernel, byte-identical output to the interpretive
//! engines), or `tape-wide` (the 256-bit tape packing 255 faults per
//! pass; identical tables, pack-granular trace records differ). The
//! default is chosen from `--threads` as before.
//!
//! `grade` supports crash-safe campaigns: `--checkpoint FILE` records
//! every completed work pack to an fsynced journal, `--resume FILE`
//! restores those packs (byte-identical output, any thread count), and
//! `--cycle-budget N` arms the runaway-fault watchdog at N times the
//! design's nominal run length. If a study finishes with quarantined
//! packs, watchdog hits, or a degraded journal, the incidents are
//! listed on stderr and the exit status is nonzero.
//!
//! `lint` runs the `sfr-lint` structural rule suite — unreachable FSM
//! states, dead transitions, constant and stuck nets, never-selected
//! mux inputs, lifespan overlaps, combinational loops — over a
//! benchmark (or the built-in broken `--fixture`) and exits nonzero if
//! any `error`-severity diagnostic fires. Diagnostics are normalized:
//! stable-sorted by severity/rule/location and exact repeats of the
//! same rule at the same location printed once. `--format json` emits
//! the report as a machine-readable object instead (validated by
//! `sfr obs-check --diagnostics`). `--static-prune` on
//! `classify`/`grade` classifies statically-provable faults without
//! simulation and prunes them from the campaign; results are
//! byte-identical to the unpruned run.
//!
//! `--collapse` on `classify`/`grade`/`shard serve` enables structural
//! fault collapsing: structurally equivalent controller faults (BUF/INV
//! chains, controlling-value links through fanout-free nets) are folded
//! into equivalence classes and only one representative per class is
//! simulated and power-graded; every member inherits its
//! representative's verdict and grade, so the tables and the campaign
//! fingerprint are byte-identical to the uncollapsed run at any thread
//! count and engine.
//!
//! `analyze` reports what the static layer proves about a benchmark
//! *without* running a campaign: the collapsed fault universe, the
//! equivalence-class partition with per-rule merge attribution, the
//! statically-decided CFR/SFR split (dead cone, constant site,
//! abstract-interpretation masking/parity, exhaustive table, oracle),
//! and how many faults a `--static-prune --collapse` campaign would
//! actually simulate. `--format json` emits the same report
//! machine-readably (validated by `sfr obs-check --analysis`).
//!
//! `shard serve` runs a `grade` campaign as a fault-tolerant
//! distributed coordinator: grade packs are leased to connecting
//! `shard work` processes over a length-prefixed TCP protocol with
//! heartbeats, expired leases are reassigned under exponential
//! backoff, stale results are fenced, and the merged table is
//! byte-identical to a local `grade` run — even with zero workers
//! (graceful local fallback) or with the built-in chaos harness
//! (`--chaos kill=P,stall=P`) killing and stalling workers mid-run.
//!
//! `shard serve --worker-trace-dir DIR` makes every spawned worker
//! write its own flight-recorder trace to
//! `DIR/worker-<slot>-<generation>.jsonl` (the generation counts
//! respawns, so a chaos-killed worker's torn trace survives next to
//! its replacement's). `shard work --worker-id N` stamps N on the
//! worker's own trace records; the lease token, which doubles as the
//! fencing token, is the join key against the coordinator's trace.
//!
//! `report` is the flight-recorder reader: it merges a coordinator
//! trace, any number of worker traces, and the run manifest into one
//! causally-ordered account — per-worker utilization, lease churn,
//! heartbeat jitter, pack latency percentiles, incidents cross-linked
//! to checkpoint-journal keys, and per-phase wall clock. Cross-process
//! ordering never compares clocks: lease lifecycles are reconstructed
//! per token. With `--journal FILE` it also proves every journaled
//! grade pack is attributed to a trace record, and it flags gaps —
//! packs granted but never resolved, fenced zombie results, torn
//! worker traces. `--format json` emits a machine-readable report
//! (validated by `sfr obs-check --report`).
//!
//! `vcd` dumps a waveform of one computation run (optionally with a
//! controller fault injected, e.g. `--fault g21.out/sa1`) for any VCD
//! viewer.
//!
//! Every campaign command (`classify`, `grade`, `testprogram`) accepts
//! the observability flags: `--trace-out FILE` streams a structured
//! JSONL event trace, `--metrics-out FILE` exports a Prometheus text
//! snapshot (plus a human summary on stderr), `--manifest-out FILE`
//! (grade/testprogram) writes a deterministic run manifest —
//! refusing to overwrite an existing one unless `--force` is given —
//! and `--quiet` silences the live status line. All observability
//! output goes to stderr or the named files; stdout carries only the
//! result tables, byte-identical with every sink on or off.
//! `obs-check` validates previously written artifacts.

use sfr_power::exec::{Counters, EngineKind, Progress, Tee};
use sfr_power::obs::{Metrics, TraceWriter, TtyStatus};
use sfr_power::shard;
use sfr_power::{
    benchmarks, classify_system_with, describe_effect, ClassifyConfig, EmittedSystem, FaultClass,
    Logic, StuckAt, StudyBuilder, System, SystemConfig,
};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sfr classify    <benchmark> [--width N] [--patterns N] [--threads N] [--engine NAME]\n                  \
         [--static-prune] [--collapse]\n  \
         sfr grade       <benchmark> [--width N] [--threshold PCT] [--threads N] [--engine NAME]\n                  \
         [--static-prune] [--collapse] [--checkpoint FILE] [--resume FILE]\n                  \
         [--cycle-budget N]\n  \
         sfr analyze     <benchmark> [--width N] [--threads N] [--format text|json]\n  \
         sfr lint        <benchmark>|--fixture [--width N] [--format text|json]\n  \
         sfr stats       <benchmark> [--width N]\n  \
         sfr vcd         <benchmark> [--width N] [--fault SPEC] [--out FILE]\n  \
         sfr verilog     <benchmark> [--width N] [--out FILE]\n  \
         sfr testprogram <benchmark> [--width N] [--patterns N] [--out FILE] [--threads N]\n                  \
         [--engine NAME]\n  \
         sfr table2      [--patterns N] [--threads N] [--engine NAME]\n  \
         sfr shard serve <benchmark> [grade flags] [--addr HOST:PORT] [--lease-ms N]\n                  \
         [--grace-ms N] [--spawn-workers N] [--chaos kill=P,stall=P] [--chaos-seed N]\n                  \
         [--worker-trace-dir DIR]\n  \
         sfr shard work  --connect HOST:PORT [--max-retries N] [--stall P] [--chaos-seed N]\n                  \
         [--worker-id N]\n  \
         sfr report      <artifacts...> [--journal FILE] [--format text|json]\n  \
         sfr obs-check   [--trace FILE] [--manifest FILE] [--metrics FILE]\n                  \
         [--diagnostics FILE] [--analysis FILE] [--report FILE]\n\
         observability (classify/grade/testprogram): [--trace-out FILE] [--metrics-out FILE]\n                  \
         [--manifest-out FILE] [--force] [--quiet]\n\
         benchmarks: diffeq | facet | poly | fir\n\
         engines: serial | lane | threaded | tape | tape-wide (default from --threads)"
    );
    ExitCode::FAILURE
}

/// The observability sinks selected on the command line: the always-on
/// [`Counters`] summary plus the optional JSONL trace writer, metrics
/// registry, and throttled live status line. Fan them out to a study
/// with [`Obs::sinks`] and a [`Tee`].
struct Obs {
    counters: Counters,
    trace: Option<TraceWriter>,
    metrics: Option<(Metrics, String)>,
    tty: TtyStatus,
}

impl Obs {
    /// Opens the sinks requested by `--trace-out` / `--metrics-out` /
    /// `--quiet`. The trace file (and its parent directories) are
    /// created up front so a bad path fails before the campaign runs.
    fn create(
        trace_out: Option<&str>,
        metrics_out: Option<&str>,
        quiet: bool,
    ) -> Result<Self, String> {
        let trace = match trace_out {
            Some(path) => Some(
                TraceWriter::create(path)
                    .map_err(|e| format!("cannot open trace file {path}: {e}"))?,
            ),
            None => None,
        };
        Ok(Obs {
            counters: Counters::new(),
            trace,
            metrics: metrics_out.map(|p| (Metrics::new(), p.to_string())),
            tty: TtyStatus::stderr(quiet),
        })
    }

    /// The sink list to pass to [`Tee::new`].
    fn sinks(&self) -> Vec<&dyn Progress> {
        let mut sinks: Vec<&dyn Progress> = vec![&self.counters, &self.tty];
        if let Some(t) = &self.trace {
            sinks.push(t);
        }
        if let Some((m, _)) = &self.metrics {
            sinks.push(m);
        }
        sinks
    }

    /// Clears the status line, renders the campaign summary (and the
    /// metrics summary when enabled) to stderr, and finalizes the
    /// trace and metrics files.
    fn finish(self) -> Result<(), String> {
        self.tty.finish();
        eprint!("{}", self.counters.snapshot());
        if let Some((metrics, path)) = &self.metrics {
            eprint!("{}", metrics.render_summary());
            metrics
                .write_prometheus(path)
                .map_err(|e| format!("cannot write metrics to {path}: {e}"))?;
            eprintln!("metrics written to {path}");
        }
        if let Some(trace) = self.trace {
            let path = trace.path().display().to_string();
            trace
                .finish()
                .map_err(|e| format!("cannot finalize trace {path}: {e}"))?;
            eprintln!("trace written to {path}");
        }
        Ok(())
    }
}

/// Minimal `--key value` argument scanner.
struct Args {
    rest: Vec<String>,
}

impl Args {
    fn new(args: Vec<String>) -> Self {
        Args { rest: args }
    }

    fn flag(&mut self, name: &str) -> Option<String> {
        let pos = self.rest.iter().position(|a| a == name)?;
        if pos + 1 >= self.rest.len() {
            return None;
        }
        self.rest.remove(pos);
        Some(self.rest.remove(pos))
    }

    /// Removes a bare switch (no value) and reports whether it was
    /// present.
    fn switch(&mut self, name: &str) -> bool {
        match self.rest.iter().position(|a| a == name) {
            Some(pos) => {
                self.rest.remove(pos);
                true
            }
            None => false,
        }
    }

    fn positional(&mut self) -> Option<String> {
        if self.rest.is_empty() {
            None
        } else {
            Some(self.rest.remove(0))
        }
    }
}

fn build_bench(name: &str, width: usize) -> Result<EmittedSystem, String> {
    match name {
        "diffeq" => benchmarks::diffeq(width).map_err(|e| e.to_string()),
        "facet" => benchmarks::facet(width).map_err(|e| e.to_string()),
        "poly" => benchmarks::poly(width).map_err(|e| e.to_string()),
        "fir" => benchmarks::fir(width).map_err(|e| e.to_string()),
        other => Err(format!(
            "unknown benchmark `{other}` (diffeq|facet|poly|fir)"
        )),
    }
}

fn main() -> ExitCode {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() {
        return usage();
    }
    let cmd = argv.remove(0);
    let mut args = Args::new(argv);
    match run(&cmd, &mut args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(cmd: &str, args: &mut Args) -> Result<(), String> {
    let width: usize = args
        .flag("--width")
        .map(|s| s.parse().map_err(|_| "bad --width"))
        .transpose()?
        .unwrap_or(4);
    let patterns: usize = args
        .flag("--patterns")
        .map(|s| s.parse().map_err(|_| "bad --patterns"))
        .transpose()?
        .unwrap_or(1200);
    let threshold: f64 = args
        .flag("--threshold")
        .map(|s| s.parse().map_err(|_| "bad --threshold"))
        .transpose()?
        .unwrap_or(5.0);
    let threads: usize = args
        .flag("--threads")
        .map(|s| s.parse().map_err(|_| "bad --threads"))
        .transpose()?
        .unwrap_or(1);
    let eff_threads = if threads == 0 {
        sfr_power::exec::default_threads()
    } else {
        threads
    };
    let engine = match args.flag("--engine") {
        Some(name) => EngineKind::parse(&name, eff_threads).ok_or_else(|| {
            format!("unknown engine `{name}` (serial|lane|threaded|tape|tape-wide)")
        })?,
        None => EngineKind::for_threads(eff_threads),
    };
    let static_prune = args.switch("--static-prune");
    let collapse = args.switch("--collapse");
    let format = args.flag("--format").unwrap_or_else(|| "text".to_string());
    if format != "text" && format != "json" {
        return Err(format!("unknown format `{format}` (text|json)"));
    }
    let fault_spec = args.flag("--fault");
    let out_file = args.flag("--out");
    let checkpoint = args.flag("--checkpoint");
    let resume = args.flag("--resume");
    let cycle_budget: Option<usize> = args
        .flag("--cycle-budget")
        .map(|s| s.parse().map_err(|_| "bad --cycle-budget"))
        .transpose()?;
    let trace_out = args.flag("--trace-out");
    let metrics_out = args.flag("--metrics-out");
    let manifest_out = args.flag("--manifest-out");
    let force = args.switch("--force");
    let quiet = args.switch("--quiet");

    match cmd {
        "classify" => {
            let name = args.positional().ok_or("missing benchmark name")?;
            let emitted = build_bench(&name, width)?;
            let sys =
                System::build(&emitted, SystemConfig::default()).map_err(|e| e.to_string())?;
            let obs = Obs::create(trace_out.as_deref(), metrics_out.as_deref(), quiet)?;
            let sinks = obs.sinks();
            let tee = Tee::new(&sinks);
            let (c, _quarantined) = sfr_power::classify_system_collapsed(
                &sys,
                &ClassifyConfig {
                    test_patterns: patterns,
                    static_prune,
                    ..Default::default()
                },
                engine.build().as_ref(),
                &tee,
                None,
                collapse,
            );
            drop(sinks);
            obs.finish()?;
            println!(
                "{name} (width {width}): {} controller faults — {} SFI, {} CFR, {} SFR ({:.1}%)",
                c.total(),
                c.sfi_count(),
                c.cfr_count(),
                c.sfr_count(),
                c.percent_sfr()
            );
            for f in c.sfr() {
                let effects: Vec<String> =
                    f.effects.iter().map(|e| describe_effect(&sys, e)).collect();
                println!("  SFR {:<14} {}", f.fault.to_string(), effects.join("; "));
            }
            Ok(())
        }
        "grade" => {
            let name = args.positional().ok_or("missing benchmark name")?;
            let emitted = build_bench(&name, width)?;
            let mut builder = StudyBuilder::from_emitted(&name, emitted)
                .test_patterns(patterns)
                .threshold_pct(threshold)
                .static_prune(static_prune)
                .collapse(collapse)
                .threads(threads)
                .engine(engine)
                .force(force);
            if let Some(path) = checkpoint {
                builder = builder.checkpoint(path);
            }
            if let Some(path) = resume {
                builder = builder.resume(path);
            }
            if let Some(factor) = cycle_budget {
                builder = builder.cycle_budget(factor);
            }
            if let Some(path) = &manifest_out {
                builder = builder.manifest_out(path);
            }
            let prepared = builder.build().map_err(|e| e.to_string())?;
            eprintln!(
                "classifying and grading {name} by Monte Carlo power on {threads} thread(s)..."
            );
            let obs = Obs::create(trace_out.as_deref(), metrics_out.as_deref(), quiet)?;
            let sinks = obs.sinks();
            let tee = Tee::new(&sinks);
            let study = prepared.run_with(&tee);
            drop(sinks);
            obs.finish()?;
            if let Some(path) = &manifest_out {
                // run_with already warned on stderr if the write failed.
                if std::path::Path::new(path).exists() {
                    eprintln!("manifest written to {path}");
                }
            }
            print_grade_table(&name, threshold, &study)
        }
        "lint" => {
            let (subject, mut report) = if args.switch("--fixture") {
                ("fixture".to_string(), sfr_power::fixture_report())
            } else {
                let name = args.positional().ok_or("missing benchmark name")?;
                let emitted = build_bench(&name, width)?;
                let sys =
                    System::build(&emitted, SystemConfig::default()).map_err(|e| e.to_string())?;
                (name, sfr_power::lint_system(&sys))
            };
            report.normalize();
            if format == "json" {
                println!("{}", render_lint_json(&subject, &report));
            } else {
                for d in &report.diagnostics {
                    println!("{d}");
                }
            }
            let errors = report.error_count();
            if errors > 0 {
                return Err(format!(
                    "lint found {errors} error(s) in {} diagnostic(s)",
                    report.diagnostics.len()
                ));
            }
            eprintln!(
                "lint: clean ({} non-error diagnostic(s))",
                report.diagnostics.len()
            );
            Ok(())
        }
        "analyze" => {
            let name = args.positional().ok_or("missing benchmark name")?;
            let emitted = build_bench(&name, width)?;
            let sys =
                System::build(&emitted, SystemConfig::default()).map_err(|e| e.to_string())?;
            let obs = Obs::create(trace_out.as_deref(), metrics_out.as_deref(), quiet)?;
            let sinks = obs.sinks();
            let tee = Tee::new(&sinks);
            let report = run_analysis(&name, width, &sys, eff_threads, &tee);
            drop(sinks);
            obs.finish()?;
            if format == "json" {
                println!("{}", report.render_json());
            } else {
                print!("{report}");
            }
            Ok(())
        }
        "stats" => {
            let name = args.positional().ok_or("missing benchmark name")?;
            let emitted = build_bench(&name, width)?;
            let sys =
                System::build(&emitted, SystemConfig::default()).map_err(|e| e.to_string())?;
            println!("{name} (width {width}) — integrated system:");
            print!("{}", sfr_netlist_stats(&sys.netlist));
            println!("controller alone:");
            print!("{}", sfr_netlist_stats(&sys.ctrl_netlist));
            println!(
                "controller fault universe: {} collapsed stuck-at faults",
                sys.controller_faults().len()
            );
            Ok(())
        }
        "vcd" => {
            let name = args.positional().ok_or("missing benchmark name")?;
            let emitted = build_bench(&name, width)?;
            let sys =
                System::build(&emitted, SystemConfig::default()).map_err(|e| e.to_string())?;
            let fault = match fault_spec {
                Some(spec) => Some(parse_fault(&sys, &spec)?),
                None => None,
            };
            let mut sim = match fault {
                Some(f) => sfr_power::CycleSim::with_fault(&sys.netlist, f),
                None => sfr_power::CycleSim::new(&sys.netlist),
            };
            let mut rec = sfr_power::VcdRecorder::all_nets(&sys.netlist);
            sys.reset_sim(&mut sim, Logic::Zero);
            let ts = sfr_power::TestSet::pseudorandom(sys.pattern_width(), 64, 0xACE1)
                .map_err(|e| e.to_string())?;
            for &p in ts.iter() {
                sys.apply_pattern(&mut sim, p);
                sim.eval();
                rec.sample(&sim);
                let at_hold = sys.decode_state(&sim) == Some(sys.meta.hold_state());
                sim.clock();
                if at_hold {
                    break;
                }
            }
            let path = out_file.unwrap_or_else(|| format!("{name}.vcd"));
            let file = std::fs::File::create(&path).map_err(|e| e.to_string())?;
            rec.write(&sys.netlist, std::io::BufWriter::new(file))
                .map_err(|e| e.to_string())?;
            println!("wrote {} cycles to {path}", rec.cycles());
            Ok(())
        }
        "verilog" => {
            let name = args.positional().ok_or("missing benchmark name")?;
            let emitted = build_bench(&name, width)?;
            let sys =
                System::build(&emitted, SystemConfig::default()).map_err(|e| e.to_string())?;
            let path = out_file.unwrap_or_else(|| format!("{name}.v"));
            let mut text = Vec::new();
            sfr_power::write_cell_library(&mut text).map_err(|e| e.to_string())?;
            sfr_power::write_verilog(&sys.netlist, &mut text).map_err(|e| e.to_string())?;
            std::fs::write(&path, text).map_err(|e| e.to_string())?;
            println!(
                "wrote {} gates ({} nets) to {path}",
                sys.netlist.gate_count(),
                sys.netlist.net_count()
            );
            Ok(())
        }
        "testprogram" => {
            let name = args.positional().ok_or("missing benchmark name")?;
            let emitted = build_bench(&name, width)?;
            eprintln!("running the full study (classification + power grading)...");
            let mut builder = StudyBuilder::from_emitted(&name, emitted)
                .test_patterns(patterns)
                .threads(threads)
                .engine(engine)
                .force(force);
            if let Some(path) = &manifest_out {
                builder = builder.manifest_out(path);
            }
            let prepared = builder.build().map_err(|e| e.to_string())?;
            let obs = Obs::create(trace_out.as_deref(), metrics_out.as_deref(), quiet)?;
            let sinks = obs.sinks();
            let tee = Tee::new(&sinks);
            let study = prepared.run_with(&tee);
            drop(sinks);
            obs.finish()?;
            let prog = sfr_power::generate_test_program(
                &study,
                &sfr_power::TestProgramConfig {
                    patterns,
                    band_pct: threshold,
                    ..Default::default()
                },
            );
            let text = prog.render();
            match out_file {
                Some(path) => {
                    std::fs::write(&path, &text).map_err(|e| e.to_string())?;
                    // Print just the header lines to the console.
                    for l in text.lines().take_while(|l| l.starts_with('#')) {
                        println!("{l}");
                    }
                    println!("(full program written to {path})");
                }
                None => print!("{text}"),
            }
            Ok(())
        }
        "table2" => {
            for name in ["diffeq", "facet", "poly"] {
                let emitted = build_bench(name, width)?;
                let sys =
                    System::build(&emitted, SystemConfig::default()).map_err(|e| e.to_string())?;
                let c = classify_system_with(
                    &sys,
                    &ClassifyConfig {
                        test_patterns: patterns,
                        ..Default::default()
                    },
                    engine.build().as_ref(),
                    &sfr_power::exec::NullProgress,
                );
                println!(
                    "{name:<8} {:>5} faults  {:>4} SFR  {:>5.1}%",
                    c.total(),
                    c.sfr_count(),
                    c.percent_sfr()
                );
                debug_assert!(matches!(
                    c.faults.first().map(|f| f.class),
                    Some(FaultClass::Sfi(_)) | Some(FaultClass::Sfr) | Some(FaultClass::Cfr) | None
                ));
            }
            Ok(())
        }
        "shard" => {
            let sub = args
                .positional()
                .ok_or("missing shard subcommand (serve|work)")?;
            let chaos_seed: u64 = args
                .flag("--chaos-seed")
                .map(|s| s.parse().map_err(|_| "bad --chaos-seed"))
                .transpose()?
                .unwrap_or(0x5FAD);
            match sub.as_str() {
                "serve" => {
                    let name = args.positional().ok_or("missing benchmark name")?;
                    let addr = args
                        .flag("--addr")
                        .unwrap_or_else(|| "127.0.0.1:0".to_string());
                    let lease_ms: u64 = args
                        .flag("--lease-ms")
                        .map(|s| s.parse().map_err(|_| "bad --lease-ms"))
                        .transpose()?
                        .unwrap_or(2_000);
                    let grace_ms: u64 = args
                        .flag("--grace-ms")
                        .map(|s| s.parse().map_err(|_| "bad --grace-ms"))
                        .transpose()?
                        .unwrap_or(3_000);
                    let spawn_workers: usize = args
                        .flag("--spawn-workers")
                        .map(|s| s.parse().map_err(|_| "bad --spawn-workers"))
                        .transpose()?
                        .unwrap_or(0);
                    let chaos = match args.flag("--chaos") {
                        Some(text) => shard::ChaosConfig::parse(&text)?,
                        None => shard::ChaosConfig::default(),
                    };
                    let worker_trace_dir = args.flag("--worker-trace-dir");
                    if lease_ms == 0 {
                        return Err("--lease-ms must be positive".into());
                    }

                    let mut spec = shard::ShardSpec::new(&name, width);
                    spec.patterns = patterns;
                    spec.threshold_pct = threshold;
                    spec.static_prune = static_prune;
                    spec.collapse = collapse;
                    spec.cycle_budget = cycle_budget;
                    spec.engine = engine;
                    spec.lease_ms = lease_ms;

                    let mut builder = spec.study_builder().threads(threads).force(force);
                    // The coordinator merges through journal replay, so
                    // a journal is mandatory; without --checkpoint it
                    // lives in a temp file for the run's duration.
                    let mut temp_journal = None;
                    match (&checkpoint, &resume) {
                        (_, Some(path)) => builder = builder.resume(path),
                        (Some(path), None) => builder = builder.checkpoint(path),
                        (None, None) => {
                            let path = std::env::temp_dir()
                                .join(format!("sfr-shard-{name}-{}.journal", std::process::id()));
                            builder = builder.checkpoint(&path);
                            temp_journal = Some(path);
                        }
                    }
                    if let Some(path) = &manifest_out {
                        builder = builder.manifest_out(path);
                    }
                    let prepared = builder.build().map_err(|e| e.to_string())?;

                    let (bound_tx, bound_rx) = std::sync::mpsc::channel();
                    let serve_cfg = shard::ServeConfig {
                        addr,
                        lease: std::time::Duration::from_millis(lease_ms),
                        grace: std::time::Duration::from_millis(grace_ms),
                        spawn_workers,
                        chaos,
                        chaos_seed,
                        bound: Some(bound_tx),
                        worker_trace_dir: worker_trace_dir.map(std::path::PathBuf::from),
                        ..Default::default()
                    };
                    // The listener may pick an ephemeral port; announce
                    // the real address once it is bound.
                    let announce = std::thread::spawn(move || {
                        if let Ok(addr) = bound_rx.recv() {
                            eprintln!(
                                "serving grade packs on {addr} \
                                 ({spawn_workers} spawned worker(s), lease {lease_ms} ms)..."
                            );
                        }
                    });
                    let obs = Obs::create(trace_out.as_deref(), metrics_out.as_deref(), quiet)?;
                    let sinks = obs.sinks();
                    let tee = Tee::new(&sinks);
                    let result = shard::serve(prepared, &spec, &serve_cfg, &tee);
                    drop(sinks);
                    drop(serve_cfg);
                    let _ = announce.join();
                    if let Some(path) = &temp_journal {
                        let _ = std::fs::remove_file(path);
                    }
                    let (study, stats) = result?;
                    obs.finish()?;
                    eprintln!(
                        "shard: {} worker connection(s), {} lease(s) granted, {} expired, \
                         {} result(s) fenced, {} pack(s) merged from workers, {} local, \
                         {} chaos kill(s)",
                        stats.workers_connected,
                        stats.leases_granted,
                        stats.leases_expired,
                        stats.results_fenced,
                        stats.packs_merged_remote,
                        stats.packs_local,
                        stats.chaos_kills
                    );
                    if let Some(path) = &manifest_out {
                        if std::path::Path::new(path).exists() {
                            eprintln!("manifest written to {path}");
                        }
                    }
                    print_grade_table(&name, threshold, &study)
                }
                "work" => {
                    let connect = args
                        .flag("--connect")
                        .ok_or("shard work needs --connect HOST:PORT")?;
                    let max_retries: u32 = args
                        .flag("--max-retries")
                        .map(|s| s.parse().map_err(|_| "bad --max-retries"))
                        .transpose()?
                        .unwrap_or(8);
                    let stall: f64 = args
                        .flag("--stall")
                        .map(|s| s.parse().map_err(|_| "bad --stall"))
                        .transpose()?
                        .unwrap_or(0.0);
                    let worker_id: u64 = args
                        .flag("--worker-id")
                        .map(|s| s.parse().map_err(|_| "bad --worker-id"))
                        .transpose()?
                        .unwrap_or(0);
                    let work_cfg = shard::WorkConfig {
                        connect,
                        max_retries,
                        stall,
                        chaos_seed,
                        worker_id,
                    };
                    let obs = Obs::create(trace_out.as_deref(), metrics_out.as_deref(), quiet)?;
                    let sinks = obs.sinks();
                    let tee = Tee::new(&sinks);
                    let result = shard::work(&work_cfg, &tee);
                    drop(sinks);
                    let summary = result?;
                    obs.finish()?;
                    eprintln!(
                        "worker: {} pack(s) computed over {} session(s), {} chaos stall(s)",
                        summary.packs_computed, summary.connects, summary.stalls_injected
                    );
                    Ok(())
                }
                other => Err(format!("unknown shard subcommand `{other}` (serve|work)")),
            }
        }
        "report" => {
            let journal_in = args.flag("--journal");
            let mut artifacts = Vec::new();
            while let Some(path) = args.positional() {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read artifact {path}: {e}"))?;
                artifacts.push(sfr_power::obs::Artifact { label: path, text });
            }
            if artifacts.is_empty() {
                return Err("report needs at least one trace or manifest artifact".into());
            }
            // The journal is read here, not in sfr-obs (which is
            // dependency-free): only the grade-pack ids cross over.
            let journal_packs: Option<Vec<u64>> = match &journal_in {
                Some(path) => {
                    let journal =
                        sfr_power::CampaignJournal::open(path).map_err(|e| e.to_string())?;
                    let mut packs: Vec<u64> = journal
                        .entries()
                        .into_iter()
                        .filter(|(kind, ..)| matches!(kind, sfr_power::RecordKind::GradePack))
                        .map(|(_, id, _)| id)
                        .collect();
                    packs.sort_unstable();
                    packs.dedup();
                    Some(packs)
                }
                None => None,
            };
            let report = sfr_power::obs::build_report(&artifacts, journal_packs.as_deref())?;
            if format == "json" {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            let unattributed = report.unattributed_packs();
            if unattributed > 0 {
                return Err(format!(
                    "{unattributed} journaled pack(s) are not attributed by any trace"
                ));
            }
            Ok(())
        }
        "obs-check" => {
            let trace = args.flag("--trace");
            let manifest = args.flag("--manifest");
            let metrics = args.flag("--metrics");
            let diagnostics = args.flag("--diagnostics");
            let analysis = args.flag("--analysis");
            let report = args.flag("--report");
            if trace.is_none()
                && manifest.is_none()
                && metrics.is_none()
                && diagnostics.is_none()
                && analysis.is_none()
                && report.is_none()
            {
                return Err(
                    "obs-check needs at least one of --trace, --manifest, --metrics, \
                            --diagnostics, --analysis, --report"
                        .into(),
                );
            }
            if let Some(path) = trace {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read trace {path}: {e}"))?;
                let stats = sfr_power::obs::check_trace(&text)
                    .map_err(|e| format!("invalid trace {path}: {e}"))?;
                println!(
                    "trace {path}: ok — {} lines, {} spans ({} aborted), {} packs, {} chunks, \
                     {} quarantines, {} budget hits, {} collapse record(s)",
                    stats.lines,
                    stats.spans,
                    stats.aborted_spans,
                    stats.packs,
                    stats.chunks,
                    stats.quarantines,
                    stats.budgets,
                    stats.collapses
                );
            }
            if let Some(path) = manifest {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read manifest {path}: {e}"))?;
                sfr_power::obs::check_manifest(&text)
                    .map_err(|e| format!("invalid manifest {path}: {e}"))?;
                println!("manifest {path}: ok");
            }
            if let Some(path) = metrics {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read metrics {path}: {e}"))?;
                let samples = sfr_power::obs::check_metrics(&text)
                    .map_err(|e| format!("invalid metrics {path}: {e}"))?;
                println!("metrics {path}: ok — {samples} samples");
            }
            if let Some(path) = diagnostics {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read diagnostics {path}: {e}"))?;
                let n = sfr_power::obs::check_diagnostics(&text)
                    .map_err(|e| format!("invalid diagnostics {path}: {e}"))?;
                println!("diagnostics {path}: ok — {n} diagnostic(s)");
            }
            if let Some(path) = analysis {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read analysis {path}: {e}"))?;
                sfr_power::obs::check_analysis(&text)
                    .map_err(|e| format!("invalid analysis {path}: {e}"))?;
                println!("analysis {path}: ok");
            }
            if let Some(path) = report {
                let text = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read report {path}: {e}"))?;
                let n = sfr_power::obs::check_report(&text)
                    .map_err(|e| format!("invalid report {path}: {e}"))?;
                println!("report {path}: ok — {n} timeline entry(ies)");
            }
            Ok(())
        }
        _ => {
            usage();
            Err(format!("unknown command `{cmd}`"))
        }
    }
}

/// Prints the grade table to stdout and turns incidents into a nonzero
/// exit. Shared by `grade` and `shard serve` so the local and
/// distributed paths emit byte-identical output.
fn print_grade_table(name: &str, threshold: f64, study: &sfr_power::Study) -> Result<(), String> {
    println!(
        "{name}: fault-free datapath power {:.2} uW; band ±{threshold}%",
        study.baseline.mean_uw
    );
    let mut flagged = 0;
    for g in &study.grades {
        if g.flagged {
            flagged += 1;
        }
        println!(
            "  {:<14} {:>9.2} uW {:>+8.2}% {}",
            g.fault.to_string(),
            g.mean_uw,
            g.pct_change,
            if g.flagged { "DETECTED" } else { "" }
        );
    }
    println!(
        "{flagged}/{} undetectable faults flagged by power",
        study.grades.len()
    );
    if !study.is_clean() {
        eprint!("{}", sfr_power::render_incidents(study));
        return Err(format!(
            "study completed with {} incident(s)",
            study.incidents.len()
        ));
    }
    Ok(())
}

fn sfr_netlist_stats(nl: &sfr_power::Netlist) -> String {
    sfr_power::NetlistStats::of(nl).to_string()
}

/// Renders a normalized lint report as the `sfr-lint` JSON object
/// validated by `sfr obs-check --diagnostics`.
fn render_lint_json(subject: &str, report: &sfr_power::LintReport) -> String {
    use sfr_power::obs::json::escaped;
    use sfr_power::Severity;
    let mut out = String::from("{\"tool\":\"sfr-lint\",\"subject\":");
    out.push_str(&escaped(subject));
    out.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let span = match d.location.span {
            Some((line, col)) => format!("[{line},{col}]"),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"rule\":{},\"severity\":{},\"subject\":{},\"span\":{span},\"message\":{}}}",
            escaped(d.rule),
            escaped(&d.severity.to_string()),
            escaped(&d.location.subject),
            escaped(&d.message)
        ));
    }
    out.push_str(&format!(
        "],\"counts\":{{\"error\":{},\"warning\":{},\"info\":{}}}}}",
        report.error_count(),
        report.count(Severity::Warning),
        report.count(Severity::Info)
    ));
    out
}

/// The stable order static rules are attributed and printed in:
/// structural CFR proofs cheapest-first, then the abstract-interpretation
/// proofs, then the exhaustive fallbacks.
const ANALYZE_RULES: [&str; 6] = [
    "dead-cone",
    "constant-site",
    "masked-propagation",
    "parity-cancellation",
    "table-cfr",
    "oracle-sfr",
];

/// What `sfr analyze` computed for one benchmark.
struct AnalysisReport {
    benchmark: String,
    width: usize,
    uncollapsed: usize,
    universe: usize,
    class_count: usize,
    merged: usize,
    chain_buffer: usize,
    chain_controlling: usize,
    collapse_ratio: f64,
    dominance_pairs: usize,
    cfr: usize,
    sfr: usize,
    undecided: usize,
    by_rule: Vec<(&'static str, usize)>,
    collapse_only: usize,
    static_only: usize,
    combined: usize,
}

impl AnalysisReport {
    fn reduction_pct(&self) -> f64 {
        if self.universe == 0 {
            0.0
        } else {
            100.0 * (1.0 - self.combined as f64 / self.universe as f64)
        }
    }

    /// The `sfr-analyze` JSON object validated by
    /// `sfr obs-check --analysis`.
    fn render_json(&self) -> String {
        use sfr_power::obs::json::{escaped, num};
        let by_rule: Vec<String> = self
            .by_rule
            .iter()
            .map(|(rule, n)| format!("{}:{n}", escaped(rule)))
            .collect();
        format!(
            "{{\"tool\":\"sfr-analyze\",\"benchmark\":{},\"width\":{},\
             \"universe\":{{\"uncollapsed\":{},\"collapsed\":{}}},\
             \"classes\":{{\"count\":{},\"merged\":{},\"chain_buffer\":{},\
             \"chain_controlling\":{},\"collapse_ratio\":{},\"dominance_pairs\":{}}},\
             \"static\":{{\"cfr\":{},\"sfr\":{},\"undecided\":{},\"by_rule\":{{{}}}}},\
             \"simulate\":{{\"collapse_only\":{},\"static_only\":{},\"combined\":{},\
             \"reduction_pct\":{}}}}}",
            escaped(&self.benchmark),
            self.width,
            self.uncollapsed,
            self.universe,
            self.class_count,
            self.merged,
            self.chain_buffer,
            self.chain_controlling,
            num(self.collapse_ratio),
            self.dominance_pairs,
            self.cfr,
            self.sfr,
            self.undecided,
            by_rule.join(","),
            self.collapse_only,
            self.static_only,
            self.combined,
            num(self.reduction_pct()),
        )
    }
}

impl std::fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{} (width {}) — static fault analysis:",
            self.benchmark, self.width
        )?;
        writeln!(
            f,
            "  fault universe:      {} site-collapsed faults ({} uncollapsed)",
            self.universe, self.uncollapsed
        )?;
        writeln!(
            f,
            "  equivalence classes: {} ({} folded: {} buf/inv chain, {} controlling link; \
             ratio {:.3})",
            self.class_count,
            self.merged,
            self.chain_buffer,
            self.chain_controlling,
            self.collapse_ratio
        )?;
        writeln!(
            f,
            "  dominance pairs:     {} (reported, not merged)",
            self.dominance_pairs
        )?;
        writeln!(
            f,
            "  statically decided:  {} CFR + {} SFR of {} ({} undecided)",
            self.cfr, self.sfr, self.universe, self.undecided
        )?;
        for (rule, n) in &self.by_rule {
            writeln!(f, "    {rule:<20} {n}")?;
        }
        writeln!(
            f,
            "  campaign after --static-prune --collapse: {} of {} faults \
             ({:.1}% fewer simulated)",
            self.combined,
            self.universe,
            self.reduction_pct()
        )
    }
}

/// Runs the static layer — fault collapsing plus the rule/table/oracle
/// attribution — over one benchmark, reporting phases, counters, and
/// the collapse trace record to `progress` exactly as a campaign would.
fn run_analysis(
    name: &str,
    width: usize,
    sys: &System,
    threads: usize,
    progress: &dyn Progress,
) -> AnalysisReport {
    use sfr_power::exec::{par_map_indexed, Phase, PhaseTimer, ProgressEvent, TraceRecord};

    let faults = sys.controller_faults();
    let uncollapsed = sys.controller_faults_uncollapsed().len();

    let timer = PhaseTimer::start(progress, Phase::Collapse);
    let classes = sfr_power::FaultClasses::build(&sys.netlist, &faults);
    for _ in 0..classes.merged_count() {
        progress.event(ProgressEvent::FaultCollapsed);
    }
    if progress.wants_records() {
        progress.record(&TraceRecord::Collapse {
            universe: classes.len(),
            classes: classes.class_count(),
            merged: classes.merged_count(),
        });
    }
    timer.finish();

    let timer = PhaseTimer::start(progress, Phase::Lint);
    let analysis = sfr_power::analyze_controller_static(sys);
    let labels = par_map_indexed(threads, faults.len(), |i| {
        sfr_power::static_rule_label(sys, &analysis, faults[i])
    });
    for _ in labels.iter().flatten() {
        progress.event(ProgressEvent::FaultPruned);
    }
    timer.finish();

    let mut by_rule: Vec<(&'static str, usize)> = ANALYZE_RULES.iter().map(|&r| (r, 0)).collect();
    let mut undecided_classes = std::collections::BTreeSet::new();
    let mut undecided = 0;
    for (i, label) in labels.iter().enumerate() {
        match label {
            Some(rule) => {
                if let Some(slot) = by_rule.iter_mut().find(|(r, _)| r == rule) {
                    slot.1 += 1;
                }
            }
            None => {
                undecided += 1;
                undecided_classes.insert(classes.representative(i));
            }
        }
    }
    let sfr = by_rule
        .iter()
        .find(|(r, _)| *r == "oracle-sfr")
        .map_or(0, |(_, n)| *n);
    let cfr = faults.len() - undecided - sfr;

    AnalysisReport {
        benchmark: name.to_string(),
        width,
        uncollapsed,
        universe: faults.len(),
        class_count: classes.class_count(),
        merged: classes.merged_count(),
        chain_buffer: classes.chain_buffer_merges(),
        chain_controlling: classes.chain_controlling_merges(),
        collapse_ratio: classes.collapse_ratio(),
        dominance_pairs: classes.dominance_pairs(),
        cfr,
        sfr,
        undecided,
        by_rule,
        collapse_only: classes.class_count(),
        static_only: undecided,
        combined: undecided_classes.len(),
    }
}

/// Parses a fault spec like `g21.out/sa1` or `g7.in2/sa0` against the
/// system's controller fault universe.
fn parse_fault(sys: &System, spec: &str) -> Result<StuckAt, String> {
    sys.controller_faults()
        .into_iter()
        .find(|f| f.to_string() == spec)
        .ok_or_else(|| {
            format!("`{spec}` is not a controller fault of this system (try `sfr classify`)")
        })
}
